#include "sim/crash_harness.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <utility>

#include "array/array_device.h"
#include "common/random.h"
#include "db/database.h"
#include "host/sim_file.h"
#include "kv/kvstore.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"
#include "tier/tiered_device.h"

namespace durassd {
namespace {

using Model = std::map<std::string, std::string>;
using Engine = CrashHarness::Engine;

/// Which invariants a configuration is entitled to (see the header).
enum class Tier { kStrict, kClean, kPrefix };

Tier TierFor(const CrashHarness::Options& opt) {
  // The tiered stack acks through the flash tier's journal: durable +
  // ordered regardless of the (ignored) volatile-cache knobs.
  if (opt.tiered) return Tier::kStrict;
  if (opt.durable_cache) return Tier::kStrict;
  if (!opt.write_barriers) return Tier::kPrefix;
  if (opt.engine == Engine::kDatabase && !opt.double_write) {
    return Tier::kClean;
  }
  return Tier::kStrict;
}

struct Op {
  bool is_put = true;
  std::string key;
  std::string value;
};

/// Pre-generates the whole op sequence so the probe and crashing runs are
/// trivially identical. Deletes always target a currently-present key
/// (tracked against the no-crash trajectory), keeping delete semantics
/// well-defined for both engines.
std::vector<Op> MakeOps(const CrashHarness::Options& opt) {
  Random rng(opt.seed * 0x2545F4914F6CDD1Dull + 1);
  std::vector<Op> ops;
  ops.reserve(static_cast<size_t>(opt.ops));
  std::set<std::string> present;
  for (int i = 0; i < opt.ops; ++i) {
    Op op;
    if (!present.empty() && rng.Bernoulli(0.2)) {
      auto it = present.begin();
      std::advance(it, static_cast<long>(rng.Uniform(present.size())));
      op.is_put = false;
      op.key = *it;
      present.erase(it);
    } else {
      op.is_put = true;
      op.key = "k" + std::to_string(rng.Uniform(opt.keyspace));
      op.value = "v" + std::to_string(i) + "-" +
                 std::to_string(rng.Next() % 100000);
      present.insert(op.key);
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

/// One full stack: device (raw SSD, or a mirrored array of them) + file
/// system. The engine lives in EngineHolder so it can be destroyed and
/// reopened across simulated reboots. The power/cut/epoch helpers fan out
/// to whichever device backs the mount, so the torture logic below is
/// array-agnostic.
struct Stack {
  explicit Stack(const CrashHarness::Options& opt) {
    SsdConfig dc =
        opt.durable_cache ? SsdConfig::DuraSsd() : SsdConfig::SsdA();
    if (opt.durable_cache) dc.ordered_queue = opt.ordered_queue;
    if (opt.durable_cache && opt.log_structured_destage) {
      dc.destage_mode = SsdConfig::DestageMode::kLogStructured;
    }
    dc.geometry = FlashGeometry::Tiny();
    dc.geometry.blocks_per_plane = 256;
    dc.geometry.pages_per_block = 32;
    dc.capacitor_budget_bytes = 16 * kMiB;
    if (opt.inject_faults) {
      // The PR-1 fault model, sized so ECC absorbs every read error: the
      // harness asserts the invariants are unchanged under live faults.
      dc.faults.seed = opt.seed * 0x9E3779B97F4A7C15ull + 0xFA171E5ull;
      dc.faults.read_bit_flip_mean = 1.5;
      dc.faults.read_bit_flip_per_erase = 0.05;
      dc.faults.program_fail_rate = 0.01;
      dc.faults.erase_fail_rate = 0.005;
      dc.ecc_correctable_bits = 24;
    }
    if (opt.tiered) {
      // Flash tier: the durable-cache preset on the harness's tiny
      // geometry (the tiered stack always runs the DuraSSD flash tier —
      // the directory's commit point needs it). Capacity tier: a small
      // HDD so cuts land with destage runs and track-cache state live.
      TieredConfig tc;
      tc.flash = SsdConfig::DuraSsd();
      tc.flash.geometry = dc.geometry;
      tc.flash.capacitor_budget_bytes = dc.capacitor_budget_bytes;
      tc.flash.faults = dc.faults;
      tc.flash.ecc_correctable_bits = dc.ecc_correctable_bits;
      tc.capacity_is_hdd = true;
      tc.capacity_hdd.num_sectors = 16384;  // 64 MiB capacity tier.
      tc.flash_pct = opt.tier_flash_pct;
      tc.admission = opt.tier_admission == 0
                         ? TieredConfig::Admission::kAll
                         : TieredConfig::Admission::kBypassSequential;
      tc.destage_batch = opt.tier_destage_batch;
      tc.warm_recovery = opt.tier_warm;
      tier = MakeTieredDevice(tc);
    } else if (opt.array_mirrors > 0) {
      ArrayConfig ac;
      ac.layout = ArrayConfig::Layout::kMirrored;
      ac.auto_rebuild = opt.array_rebuild;
      ac.rebuild_batch_sectors = 64;
      ac.rebuild_interval_ns = 100 * kMicrosecond;
      array = MakeMirroredArray(dc, opt.array_mirrors, ac);
    } else {
      ssd = std::make_unique<SsdDevice>(dc);
    }
    SimFileSystem::Options fso;
    fso.write_barriers = opt.write_barriers;
    fs = std::make_unique<SimFileSystem>(dev(), fso);
  }

  BlockDevice* dev() {
    if (tier != nullptr) return tier.get();
    return array != nullptr ? static_cast<BlockDevice*>(array.get())
                            : static_cast<BlockDevice*>(ssd.get());
  }
  void SchedulePowerCut(SimTime t) {
    if (tier != nullptr) {
      tier->SchedulePowerCut(t);
    } else if (array != nullptr) {
      array->SchedulePowerCut(t);
    } else {
      ssd->SchedulePowerCut(t);
    }
  }
  void CancelScheduledPowerCut() {
    if (tier != nullptr) {
      tier->CancelScheduledPowerCut();
    } else if (array != nullptr) {
      array->CancelScheduledPowerCut();
    } else {
      ssd->CancelScheduledPowerCut();
    }
  }
  void PowerCut(SimTime t) { dev()->PowerCut(t); }
  SimTime PowerOn() { return dev()->PowerOn(); }
  bool powered() const {
    if (tier != nullptr) return tier->powered();
    return array != nullptr ? array->powered() : ssd->powered();
  }
  bool degraded() const {
    if (tier != nullptr) return tier->degraded();
    return array != nullptr
               ? array->degraded() || array->any_member_media_degraded()
               : ssd->degraded();
  }
  uint64_t epoch_violations() const {
    if (tier != nullptr) return tier->epoch_ordering_violations();
    return array != nullptr ? array->epoch_ordering_violations()
                            : ssd->stats().epoch_ordering_violations;
  }
  void set_tracer(Tracer* t) {
    // Array runs trace the read primary: its barrier/flush completions are
    // the commit boundaries the host observes. Tiered runs trace the flash
    // tier for the same reason.
    if (tier != nullptr) {
      tier->set_tracer(t);
    } else if (array != nullptr) {
      array->member(0).set_tracer(t);
    } else {
      ssd->set_tracer(t);
    }
  }
  /// Arms the whole-device death of member 0 at virtual time `kill` (array
  /// stacks only; no-op otherwise).
  void ArmKill(SimTime kill) {
    if (array != nullptr && kill > 0) {
      array->fault_injector().KillMemberAt(0, kill);
    }
  }

  IoContext io;
  std::unique_ptr<SsdDevice> ssd;
  std::unique_ptr<ArrayDevice> array;
  std::unique_ptr<TieredDevice> tier;
  std::unique_ptr<SimFileSystem> fs;
};

struct EngineHolder {
  std::unique_ptr<Database> db;
  std::unique_ptr<KvStore> kv;
  uint32_t tree = 0;
  bool tree_ok = false;

  void Reset() {
    db.reset();
    kv.reset();
    tree = 0;
    tree_ok = false;
  }
};

Status OpenEngine(Stack& s, const CrashHarness::Options& opt,
                  EngineHolder* eng, bool create_tree) {
  if (opt.engine == Engine::kDatabase) {
    Database::Options dbo;
    dbo.pool_bytes = 2 * kMiB;
    dbo.double_write = opt.double_write;
    dbo.checkpoint_log_bytes = 2 * kMiB;  // Frequent checkpoints.
    dbo.sync_every_page_write = opt.sync_every_page_write;
    dbo.checkpoint_queue_depth = opt.checkpoint_queue_depth;
    dbo.durability_mode = opt.durability_mode;
    auto d = Database::Open(s.io, s.fs.get(), s.fs.get(), dbo);
    if (!d.ok()) return d.status();
    eng->db = std::move(*d);
    if (create_tree) {
      auto t = eng->db->CreateTree(s.io, "t");
      if (!t.ok()) return t.status();
      eng->tree = *t;
      eng->tree_ok = true;
    } else {
      auto t = eng->db->GetTreeId("t");
      // A cut before the schema became durable recovers to an empty
      // database with no tree: that is snapshot 0, not an error.
      eng->tree_ok = t.ok();
      eng->tree = t.ok() ? *t : 0;
    }
  } else {
    KvStore::Options ko;
    ko.batch_size = opt.kv_batch_size;
    ko.durability_mode = opt.durability_mode;
    auto k = KvStore::Open(s.io, s.fs.get(), "s.couch", ko);
    if (!k.ok()) return k.status();
    eng->kv = std::move(*k);
  }
  return Status::OK();
}

struct RunResult {
  bool open_ok = false;
  Status fail;  ///< OK when the whole workload completed.
  uint64_t commits = 0;
  bool commit_in_flight = false;
};

/// Opens a fresh engine and runs the workload, optionally with a power cut
/// armed at `cut`. In probe mode (`snapshots` non-null) the committed model
/// is recorded at every commit boundary.
RunResult RunWorkload(Stack& s, const CrashHarness::Options& opt,
                      const std::vector<Op>& ops, SimTime cut,
                      std::vector<Model>* snapshots) {
  RunResult r;
  if (cut > 0) s.SchedulePowerCut(cut);
  EngineHolder eng;
  Status st = OpenEngine(s, opt, &eng, /*create_tree=*/true);
  if (!st.ok()) {
    r.fail = st;
    return r;
  }
  r.open_ok = true;

  if (opt.engine == Engine::kDatabase) {
    Model model;
    size_t i = 0;
    while (i < ops.size()) {
      auto txn = eng.db->Begin(s.io);
      if (!txn.ok()) {
        r.fail = txn.status();
        return r;
      }
      const size_t batch = std::min<size_t>(
          static_cast<size_t>(opt.ops_per_txn), ops.size() - i);
      Model pending = model;
      for (size_t j = 0; j < batch; ++j) {
        const Op& op = ops[i + j];
        if (op.is_put) {
          st = eng.db->Put(s.io, *txn, eng.tree, op.key, op.value);
          if (st.ok()) pending[op.key] = op.value;
        } else {
          st = eng.db->Delete(s.io, *txn, eng.tree, op.key);
          if (st.IsNotFound()) st = Status::OK();
          if (st.ok()) pending.erase(op.key);
        }
        if (!st.ok()) {
          r.fail = st;
          return r;
        }
      }
      st = eng.db->Commit(s.io, *txn);
      if (!st.ok()) {
        r.fail = st;
        r.commit_in_flight = true;  // The commit record may be durable.
        return r;
      }
      r.commits++;
      model = std::move(pending);
      if (snapshots != nullptr) snapshots->push_back(model);
      i += batch;
    }
  } else {
    Model model;
    uint64_t uncommitted = 0;  // Updates since the last observed commit.
    for (const Op& op : ops) {
      const uint64_t commits_before = eng.kv->stats().commits;
      if (op.is_put) {
        st = eng.kv->Put(s.io, op.key, op.value);
      } else {
        st = eng.kv->Delete(s.io, op.key);
      }
      if (!st.ok()) {
        r.fail = st;
        // The failing update triggers a header write exactly when it fills
        // the batch; only then can a commit be partially durable.
        r.commit_in_flight = uncommitted + 1 >= opt.kv_batch_size;
        return r;
      }
      if (op.is_put) {
        model[op.key] = op.value;
      } else {
        model.erase(op.key);
      }
      if (eng.kv->stats().commits > commits_before) {
        r.commits++;
        uncommitted = 0;
        if (snapshots != nullptr) snapshots->push_back(model);
      } else {
        uncommitted++;
      }
    }
  }
  return r;
}

/// After a crashing run: if the scheduled cut never tripped (the workload
/// finished first, or the engine failed for another reason such as
/// degradation), cut power explicitly at the execution frontier.
void EnsureCrashed(Stack& s, SimTime cut) {
  if (s.powered()) {
    s.CancelScheduledPowerCut();
    s.PowerCut(std::max(cut, s.io.now));
  }
}

/// Reads the complete recovered key/value state. For the KvStore the whole
/// key universe is enumerated and doc_count() guards against phantom keys
/// outside it.
StatusOr<Model> DumpState(Stack& s, const CrashHarness::Options& opt,
                          EngineHolder& eng) {
  Model out;
  if (opt.engine == Engine::kDatabase) {
    if (!eng.tree_ok) return out;  // Schema never durable: empty state.
    std::vector<std::pair<std::string, std::string>> rows;
    DURASSD_RETURN_IF_ERROR(eng.db->Scan(
        s.io, eng.tree, "", static_cast<size_t>(opt.keyspace) + 8, &rows));
    for (auto& [k, v] : rows) out[k] = v;
  } else {
    for (uint64_t i = 0; i < opt.keyspace; ++i) {
      const std::string key = "k" + std::to_string(i);
      std::string value;
      const Status st = eng.kv->Get(s.io, key, &value);
      if (st.ok()) {
        out[key] = value;
      } else if (!st.IsNotFound()) {
        return st;
      }
    }
    if (eng.kv->doc_count() != out.size()) {
      return Status::Corruption(
          "doc_count " + std::to_string(eng.kv->doc_count()) +
          " != " + std::to_string(out.size()) + " visible keys");
    }
  }
  return out;
}

int64_t FindSnapshot(const Model& state, const std::vector<Model>& snaps) {
  for (size_t j = 0; j < snaps.size(); ++j) {
    if (snaps[j] == state) return static_cast<int64_t>(j);
  }
  return -1;
}

std::string DescribeDiff(const Model& got, const Model& want) {
  auto it = got.begin();
  auto jt = want.begin();
  while (it != got.end() && jt != want.end() && *it == *jt) {
    ++it;
    ++jt;
  }
  std::ostringstream os;
  os << "got " << got.size() << " keys, want " << want.size();
  if (it != got.end()) os << "; got[" << it->first << "]=" << it->second;
  if (jt != want.end()) os << "; want[" << jt->first << "]=" << jt->second;
  return os.str();
}

void AddViolation(CrashHarness::Report* rep,
                  const CrashHarness::Options& opt, int invariant,
                  const std::string& what) {
  rep->ok = false;
  rep->violations.push_back("[I" + std::to_string(invariant) + "] " + what +
                            " | repro: " + opt.ToString());
  if (opt.tracer != nullptr) {
    opt.tracer->Record(0, TraceEventType::kInvariantViolation,
                       static_cast<uint64_t>(invariant),
                       rep->violations.size());
  }
}

}  // namespace

std::string CrashHarness::Options::ToString() const {
  std::ostringstream os;
  os << "engine=" << (engine == Engine::kDatabase ? "db" : "kv")
     << " durable=" << durable_cache << " barriers=" << write_barriers
     << " dwb=" << double_write << " odsync=" << sync_every_page_write
     << " kv_batch=" << kv_batch_size << " seed=" << seed << " ops=" << ops
     << " ops_per_txn=" << ops_per_txn << " keyspace=" << keyspace
     << " cut_fraction=" << cut_fraction << " nested=" << nested_cut
     << " faults=" << inject_faults << " ordered=" << ordered_queue
     << " log_destage=" << log_structured_destage
     << " ckpt_qd=" << checkpoint_queue_depth
     << " mode=" << DurabilityModeName(durability_mode)
     << " cut_at_boundary=" << cut_at_barrier_boundary
     << " plant_reorder=" << plant_epoch_reorder
     << " mirrors=" << array_mirrors << " kill_frac=" << array_kill_fraction
     << " rebuild=" << array_rebuild << " tiered=" << tiered
     << " tier_pct=" << tier_flash_pct << " tier_adm=" << tier_admission
     << " tier_batch=" << tier_destage_batch << " tier_warm=" << tier_warm;
  return os.str();
}

CrashHarness::Options CrashHarness::Options::FromString(
    const std::string& repro) {
  Options o;
  std::istringstream is(repro);
  std::string token;
  while (is >> token) {
    const size_t eq = token.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = token.substr(0, eq);
    const std::string val = token.substr(eq + 1);
    const auto as_bool = [&] { return val != "0" && val != "false"; };
    if (key == "engine") {
      o.engine = val == "kv" ? Engine::kKvStore : Engine::kDatabase;
    } else if (key == "durable") {
      o.durable_cache = as_bool();
    } else if (key == "barriers") {
      o.write_barriers = as_bool();
    } else if (key == "dwb") {
      o.double_write = as_bool();
    } else if (key == "odsync") {
      o.sync_every_page_write = as_bool();
    } else if (key == "kv_batch") {
      o.kv_batch_size = static_cast<uint32_t>(std::stoul(val));
    } else if (key == "seed") {
      o.seed = std::stoull(val);
    } else if (key == "ops") {
      o.ops = std::stoi(val);
    } else if (key == "ops_per_txn") {
      o.ops_per_txn = std::stoi(val);
    } else if (key == "keyspace") {
      o.keyspace = std::stoull(val);
    } else if (key == "cut_fraction") {
      o.cut_fraction = std::stod(val);
    } else if (key == "nested") {
      o.nested_cut = as_bool();
    } else if (key == "faults") {
      o.inject_faults = as_bool();
    } else if (key == "ordered") {
      o.ordered_queue = as_bool();
    } else if (key == "log_destage") {
      o.log_structured_destage = as_bool();
    } else if (key == "ckpt_qd") {
      o.checkpoint_queue_depth = static_cast<uint32_t>(std::stoul(val));
    } else if (key == "mode") {
      if (val == DurabilityModeName(DurabilityMode::kVolatileFlush)) {
        o.durability_mode = DurabilityMode::kVolatileFlush;
      } else if (val == DurabilityModeName(DurabilityMode::kBarrier)) {
        o.durability_mode = DurabilityMode::kBarrier;
      } else {
        o.durability_mode = DurabilityMode::kDurableOrderedNcq;
      }
    } else if (key == "cut_at_boundary") {
      o.cut_at_barrier_boundary = as_bool();
    } else if (key == "plant_reorder") {
      o.plant_epoch_reorder = as_bool();
    } else if (key == "mirrors") {
      o.array_mirrors = static_cast<uint32_t>(std::stoul(val));
    } else if (key == "kill_frac") {
      o.array_kill_fraction = std::stod(val);
    } else if (key == "rebuild") {
      o.array_rebuild = as_bool();
    } else if (key == "tiered") {
      o.tiered = as_bool();
    } else if (key == "tier_pct") {
      o.tier_flash_pct = std::stod(val);
    } else if (key == "tier_adm") {
      o.tier_admission = static_cast<uint32_t>(std::stoul(val));
    } else if (key == "tier_batch") {
      o.tier_destage_batch = static_cast<uint32_t>(std::stoul(val));
    } else if (key == "tier_warm") {
      o.tier_warm = as_bool();
    }
    // Unknown keys are ignored: older repro lines keep working.
  }
  return o;
}

CrashHarness::Report CrashHarness::Run(const Options& opt) {
  Report rep;
  const std::vector<Op> ops = MakeOps(opt);
  // Every value ever assigned to each key (for the no-garbage check).
  std::map<std::string, std::set<std::string>> history;
  for (const Op& op : ops) {
    if (op.is_put) history[op.key].insert(op.value);
  }

  // ---- Optional pre-pass: the member-kill instant is a fraction of the
  // FAULT-FREE run's duration, which only this extra kill-free, cut-free
  // replay can reveal (the kill itself perturbs all later timing). The
  // probe pass below then runs WITH the kill armed, so probe and crashing
  // run stay bit-identical up to the cut. ----
  SimTime kill_time = 0;
  if (opt.array_mirrors > 0 && opt.array_kill_fraction > 0) {
    Stack s(opt);
    RunWorkload(s, opt, ops, /*cut=*/0, nullptr);
    const SimTime t0 = std::max<SimTime>(s.io.now, 1);
    kill_time = std::max<SimTime>(
        1, static_cast<SimTime>(static_cast<double>(t0) *
                                opt.array_kill_fraction));
  }

  // ---- Probe pass: build the oracle on a pristine, cut-free stack. ----
  std::vector<Model> snapshots;
  snapshots.push_back(Model{});  // Snapshot 0: before any commit.
  SimTime total = 0;
  // Device-level commit-boundary instants (barrier seals and flush
  // completions) harvested from the probe pass. Recording never advances
  // virtual time, so the probe timing is unperturbed.
  Tracer boundary_tracer(1 << 16);
  {
    Stack s(opt);
    if (opt.cut_at_barrier_boundary) s.set_tracer(&boundary_tracer);
    s.ArmKill(kill_time);
    const RunResult pr = RunWorkload(s, opt, ops, /*cut=*/0, &snapshots);
    if (!pr.open_ok) {
      AddViolation(&rep, opt, 0, "probe open failed: " + pr.fail.ToString());
      return rep;
    }
    // Degradation under injected faults legitimately stops the workload
    // early; determinism makes the crashing run stop at the same point.
    if (!pr.fail.ok() && !pr.fail.IsResourceExhausted()) {
      AddViolation(&rep, opt, 0,
                   "probe workload failed: " + pr.fail.ToString());
      return rep;
    }
    total = s.io.now;
  }
  if (total <= 0) total = 1;
  SimTime cut =
      static_cast<SimTime>(static_cast<double>(total) * opt.cut_fraction);
  if (opt.cut_at_barrier_boundary) {
    // Snap the cut to an epoch-edge instant: barriers and flush completions
    // are exactly where the suffix the device may lose changes epoch.
    // cut_fraction selects which boundary. Without any boundary event
    // (e.g. the nobarrier deployment syncs without device commands) the
    // fraction-of-total cut above stands.
    std::vector<SimTime> boundaries;
    for (const TraceEvent& e : boundary_tracer.Events()) {
      if (e.type == TraceEventType::kBarrier ||
          e.type == TraceEventType::kFlushDone) {
        boundaries.push_back(e.t);
      }
    }
    if (!boundaries.empty()) {
      size_t idx = static_cast<size_t>(
          opt.cut_fraction * static_cast<double>(boundaries.size() - 1));
      idx = std::min(idx, boundaries.size() - 1);
      cut = boundaries[idx];
    }
  }
  if (cut < 1) cut = 1;

  // ---- Optional replay to learn the recovery duration, so the nested cut
  // can land deterministically in the middle of recovery. ----
  SimTime nested_at = 0;
  if (opt.nested_cut) {
    Stack s(opt);
    s.ArmKill(kill_time);
    RunWorkload(s, opt, ops, cut, nullptr);
    EnsureCrashed(s, cut);
    s.PowerOn();
    s.io.now = 0;
    EngineHolder probe_eng;
    const Status st = OpenEngine(s, opt, &probe_eng, /*create_tree=*/false);
    // If recovery fails cleanly on this configuration there is nothing to
    // nest into; the main pass handles the clean failure on its own.
    if (st.ok() && s.io.now > 1) nested_at = s.io.now / 2 + 1;
  }

  // ---- The crashing run. ----
  Stack s(opt);
  s.ArmKill(kill_time);
  const RunResult rr = RunWorkload(s, opt, ops, cut, nullptr);
  EnsureCrashed(s, cut);
  rep.cuts = 1;
  // Epoch oracle: the device audits its own durable-cache survivor set at
  // every power cut — keeping any write of epoch N+1 while losing one of
  // epoch N is a barrier-ordering violation regardless of what the engine
  // later recovers. Checked after every cut this Run performs.
  uint64_t epoch_seen = 0;
  const auto check_epoch = [&](CrashHarness::Report* r) {
    const uint64_t v = s.epoch_violations();
    if (v > epoch_seen) {
      AddViolation(r, opt, 5,
                   "epoch ordering: device kept a newer-epoch write while "
                   "losing an older-epoch one (" +
                       std::to_string(v - epoch_seen) + " cut(s))");
      epoch_seen = v;
    }
  };
  check_epoch(&rep);
  rep.commits_acked = rr.commits;
  rep.commit_in_flight = rr.commit_in_flight;
  if (rr.open_ok && rr.fail.ok()) {
    // The whole workload completed before the cut: nothing was in flight.
    rep.commit_in_flight = false;
  }
  if (!rr.open_ok && !rr.fail.IsDeviceOffline()) {
    AddViolation(&rep, opt, 0,
                 "initial open failed: " + rr.fail.ToString());
    return rep;
  }

  const Tier tier = TierFor(opt);

  // ---- Recovery, retrying across nested cuts. ----
  EngineHolder eng;
  Status open_st = Status::OK();
  for (int attempt = 0; attempt < 6; ++attempt) {
    rep.recovery_attempts++;
    s.PowerOn();
    s.io.now = 0;
    if (attempt == 0 && nested_at > 0) {
      s.SchedulePowerCut(nested_at);
    } else {
      s.CancelScheduledPowerCut();
    }
    eng.Reset();
    open_st = OpenEngine(s, opt, &eng, /*create_tree=*/false);
    if (open_st.ok()) {
      s.CancelScheduledPowerCut();
      break;
    }
    if (open_st.IsDeviceOffline()) {
      rep.cuts++;  // The nested cut tripped inside recovery; go again.
      continue;
    }
    break;  // A clean (non-cut) recovery failure.
  }

  if (!open_st.ok()) {
    rep.recovered = false;
    rep.degraded = s.degraded();
    check_epoch(&rep);  // Nested cuts during recovery are audited too.
    const bool clean = open_st.IsCorruption() || open_st.IsDataLoss();
    if (tier == Tier::kStrict || !clean) {
      AddViolation(&rep, opt, 0, "recovery failed: " + open_st.ToString());
    }
    return rep;
  }
  rep.recovered = true;

  StatusOr<Model> state = DumpState(s, opt, eng);
  if (!state.ok()) {
    AddViolation(&rep, opt, 0,
                 "post-recovery reads failed: " + state.status().ToString());
    return rep;
  }

  // ---- Negative self-test: forge a cross-epoch reordering and require the
  // oracle below to reject it. The forgery keeps the newest pre-cut commit's
  // updates while reverting an older commit's delta — exactly the survivor
  // shape a broken barrier implementation would leave behind. A Run with
  // this flag that still reports ok means the oracle is blind.
  if (opt.plant_epoch_reorder) {
    const uint64_t acked = rr.commits;
    if (acked < 2) {
      AddViolation(&rep, opt, 0,
                   "plant_epoch_reorder requires >= 2 commits before the "
                   "cut; got " +
                       std::to_string(acked));
      return rep;
    }
    Model forged;
    bool planted = false;
    for (uint64_t e = acked - 1; e >= 1; --e) {
      Model trial = snapshots[acked];
      for (const auto& [k, v] : snapshots[e]) {
        auto prev = snapshots[e - 1].find(k);
        const bool differs =
            prev == snapshots[e - 1].end() || prev->second != v;
        if (!differs) continue;
        if (prev == snapshots[e - 1].end()) {
          trial.erase(k);
        } else {
          trial[k] = prev->second;
        }
      }
      if (trial != snapshots[acked]) {
        forged = std::move(trial);
        planted = true;
        break;
      }
    }
    if (!planted) {
      AddViolation(&rep, opt, 0,
                   "plant failed: no commit delta survives into the final "
                   "pre-cut snapshot");
      return rep;
    }
    *state = std::move(forged);
  }

  // ---- Oracle check. ----
  const uint64_t c = rr.commits;
  std::vector<uint64_t> allowed{c};
  if (rr.commit_in_flight && c + 1 < snapshots.size()) {
    allowed.push_back(c + 1);  // The commit-uncertain window.
  }

  if (tier == Tier::kStrict || tier == Tier::kClean) {
    bool matched = false;
    for (const uint64_t idx : allowed) {
      if (*state == snapshots[idx]) {
        matched = true;
        rep.snapshot_matched = idx;
        break;
      }
    }
    if (!matched) {
      const int64_t j = FindSnapshot(*state, snapshots);
      if (j >= 0 && static_cast<uint64_t>(j) < c) {
        AddViolation(&rep, opt, 2,
                     "durability: acked commit lost (recovered snapshot " +
                         std::to_string(j) + ", acked " + std::to_string(c) +
                         ")");
      } else if (j > static_cast<int64_t>(allowed.back())) {
        AddViolation(&rep, opt, 1,
                     "atomicity: unacknowledged commits became visible "
                     "(recovered snapshot " +
                         std::to_string(j) + ", acked " + std::to_string(c) +
                         ")");
      } else {
        AddViolation(&rep, opt, 1,
                     "atomicity: recovered state matches no snapshot: " +
                         DescribeDiff(*state, snapshots[c]));
      }
    }
  } else {  // Tier::kPrefix
    if (opt.engine == Engine::kKvStore) {
      const int64_t j = FindSnapshot(*state, snapshots);
      if (j < 0 || static_cast<uint64_t>(j) > allowed.back()) {
        AddViolation(&rep, opt, 1,
                     "prefix: recovered state is no committed snapshot <= " +
                         std::to_string(allowed.back()) + ": " +
                         DescribeDiff(*state, snapshots[c]));
      } else {
        rep.snapshot_matched = static_cast<uint64_t>(j);
      }
    } else {
      for (const auto& [k, v] : *state) {
        auto h = history.find(k);
        if (h == history.end() || h->second.count(v) == 0) {
          AddViolation(&rep, opt, 3,
                       "no-garbage: key " + k +
                           " recovered a never-written value " + v);
          break;
        }
      }
    }
  }

  // ---- Recovery idempotency: cut immediately after recovering, recover
  // again, and require the bit-identical state. (Skipped for kPrefix: an
  // unsafe configuration may legitimately lose more on the second cut.
  // Skipped under plant_epoch_reorder: the in-memory state was forged, so
  // comparing a real second recovery against it would be meaningless.)
  if (tier != Tier::kPrefix && !opt.plant_epoch_reorder) {
    const Model first = *state;
    eng.Reset();
    s.PowerCut(s.io.now + 1);
    rep.cuts++;
    s.PowerOn();
    s.io.now = 0;
    const Status st2 = OpenEngine(s, opt, &eng, /*create_tree=*/false);
    if (!st2.ok()) {
      AddViolation(&rep, opt, 4,
                   "idempotency: second recovery failed: " + st2.ToString());
    } else {
      StatusOr<Model> state2 = DumpState(s, opt, eng);
      if (!state2.ok()) {
        AddViolation(&rep, opt, 4, "idempotency: reads failed: " +
                                       state2.status().ToString());
      } else if (*state2 != first) {
        AddViolation(&rep, opt, 4,
                     "idempotency: second recovery diverged: " +
                         DescribeDiff(*state2, first));
      }
    }
  }

  rep.degraded = s.degraded();
  check_epoch(&rep);  // Covers the idempotency cut.
  return rep;
}

}  // namespace durassd
