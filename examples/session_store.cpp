// NoSQL scenario: a web session store on the Couchbase-style KvStore,
// tuning the batch-size knob (fsync frequency) that Table 5 sweeps.
// Shows the throughput/durability-window trade-off on a volatile device,
// and how DuraSSD collapses the trade-off (batch-size 1 is nearly free).
#include <cstdio>
#include <memory>
#include <string>

#include "db/io_context.h"
#include "host/sim_file.h"
#include "kv/kvstore.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

using namespace durassd;

namespace {

void RunOne(bool durable_cache, uint32_t batch) {
  SsdConfig dc = durable_cache ? SsdConfig::DuraSsd() : SsdConfig::SsdA();
  dc.geometry = FlashGeometry::Tiny();
  dc.geometry.blocks_per_plane = 192;
  dc.geometry.pages_per_block = 32;
  SsdDevice ssd(dc);
  SimFileSystem::Options fso;
  // Operators disable barriers only when the device earns it.
  fso.write_barriers = !durable_cache;
  SimFileSystem fs(&ssd, fso);

  IoContext io;
  KvStore::Options ko;
  ko.batch_size = batch;
  auto store = KvStore::Open(io, &fs, "sessions.couch", ko);
  if (!store.ok()) return;

  // 2047 session updates (1KB JSON-ish documents).
  const std::string doc(1024, 's');
  const SimTime start = io.now;
  for (int i = 0; i < 2047; ++i) {
    (*store)->Put(io, "session:" + std::to_string(i % 500), doc);
  }
  const double secs = static_cast<double>(io.now - start) / kSecond;

  // Crash without warning; count sessions whose last update survived.
  const uint64_t committed_seq = (*store)->committed_seq();
  store->reset();
  ssd.PowerCut(io.now);
  ssd.PowerOn();

  IoContext io2;
  auto reopened = KvStore::Open(io2, &fs, "sessions.couch", ko);
  const uint64_t recovered_seq =
      reopened.ok() ? (*reopened)->committed_seq() : 0;

  printf("  %-22s batch=%-4u %9.0f ops/s   window lost: %llu updates\n",
         durable_cache ? "DuraSSD, nobarrier" : "SSD-A, barriers on", batch,
         2047.0 / secs,
         static_cast<unsigned long long>(committed_seq - recovered_seq));
}

}  // namespace

int main() {
  printf("Session store: fsync batch size vs throughput vs durability\n");
  for (uint32_t batch : {1u, 10u, 100u}) RunOne(false, batch);
  for (uint32_t batch : {1u, 10u, 100u}) RunOne(true, batch);
  printf("\nOn the volatile device, throughput requires batching — and a "
         "crash\nloses the unbatched window. DuraSSD gives batch-size-1 "
         "durability at\nbatch-size-100 speed.\n");
  return 0;
}
