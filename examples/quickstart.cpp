// Quickstart: create a DuraSSD, write through the file system, pull the
// plug mid-flight, reboot, and observe that every acknowledged write
// survived — without a single FLUSH CACHE.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <string>

#include "host/sim_file.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

using namespace durassd;

int main() {
  // 1. A DuraSSD with the paper's geometry (8 channels x 4 packages x
  //    4 chips x 2 planes, 8KB NAND pages, 4KB mapping) and a capacitor-
  //    backed durable cache.
  SsdConfig config = SsdConfig::DuraSsd();
  SsdDevice ssd(config);
  printf("DuraSSD: %.1f GiB logical, durable cache: %s\n",
         static_cast<double>(ssd.capacity_bytes()) / kGiB,
         ssd.has_durable_cache() ? "yes" : "no");

  // 2. Mount a file system with write barriers OFF — safe on this device,
  //    reckless on any volatile-cache SSD.
  SimFileSystem::Options fso;
  fso.write_barriers = false;
  SimFileSystem fs(&ssd, fso);
  SimFile* file = fs.Open("journal.dat");

  // 3. Write 100 records. Virtual time advances through each call; no
  //    fsync ever reaches the device as a FLUSH CACHE.
  SimTime now = 0;
  for (int i = 0; i < 100; ++i) {
    const std::string record = "record-" + std::to_string(i) +
                               std::string(4096 - 16, '.');
    const SimFile::IoResult w = file->Write(now, i * 4096ull, record);
    if (!w.status.ok()) {
      fprintf(stderr, "write failed: %s\n", w.status.ToString().c_str());
      return 1;
    }
    now = w.done;
    const SimFile::IoResult s = file->Sync(now);  // No barrier: ~free.
    now = s.done;
  }
  printf("wrote 100 records in %.2f ms of device time "
         "(%llu FLUSH CACHE commands sent)\n",
         static_cast<double>(now) / kMillisecond,
         static_cast<unsigned long long>(ssd.stats().flushes));

  // 4. Power failure, right now — destages are still in flight.
  ssd.PowerCut(now);
  printf("power cut at %.2f ms: %llu pages dumped on capacitor power\n",
         static_cast<double>(now) / kMillisecond,
         static_cast<unsigned long long>(ssd.stats().dumped_pages));

  // 5. Reboot: the recovery manager replays the dump.
  const SimTime recovery = ssd.PowerOn();
  printf("rebooted; recovery took %.2f ms (%llu pages replayed)\n",
         static_cast<double>(recovery) / kMillisecond,
         static_cast<unsigned long long>(ssd.stats().replayed_pages));

  // 6. Verify every record.
  int intact = 0;
  for (int i = 0; i < 100; ++i) {
    std::string data;
    const SimFile::IoResult r = file->Read(0, i * 4096ull, 4096, &data);
    const std::string expect = "record-" + std::to_string(i);
    if (r.status.ok() && data.compare(0, expect.size(), expect) == 0) {
      intact++;
    }
  }
  printf("%d/100 records intact after power loss.\n", intact);
  return intact == 100 ? 0 : 1;
}
