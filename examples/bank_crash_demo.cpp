// OLTP crash demo: a tiny bank ledger on minibase, run in the paper's best
// configuration (no write barriers, no double-write buffer) on two devices:
//   1. DuraSSD — every committed transfer survives a power cut;
//   2. a commodity volatile-cache SSD — committed transfers evaporate.
//
// This is the paper's Section 2 argument made executable: the OFF/OFF
// configuration is an order of magnitude faster, and only the durable
// cache makes it safe.
#include <cstdio>
#include <memory>
#include <string>

#include "db/database.h"
#include "host/sim_file.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"
#include "workloads/keys.h"

using namespace durassd;

namespace {

struct Outcome {
  double seconds = 0;
  int committed = 0;
  int survived = 0;
  bool recovered = false;
};

Outcome RunScenario(bool durable_cache) {
  SsdConfig dc = durable_cache ? SsdConfig::DuraSsd() : SsdConfig::SsdA();
  dc.geometry = FlashGeometry::Tiny();
  dc.geometry.blocks_per_plane = 128;
  dc.geometry.pages_per_block = 32;
  SsdDevice ssd(dc);

  SimFileSystem::Options fso;
  fso.write_barriers = false;  // The DuraSSD deployment mode.
  SimFileSystem fs(&ssd, fso);

  IoContext io;
  Database::Options dbo;
  dbo.pool_bytes = 2 * kMiB;
  dbo.double_write = false;
  auto db_or = Database::Open(io, &fs, &fs, dbo);
  if (!db_or.ok()) return {};
  std::unique_ptr<Database> db = std::move(*db_or);

  auto accounts = db->CreateTree(io, "accounts");
  Outcome out;

  // 200 committed transfers between 20 accounts.
  for (int i = 0; i < 200; ++i) {
    auto txn = db->Begin(io);
    const uint64_t from = i % 20;
    const uint64_t to = (i + 7) % 20;
    db->Put(io, *txn, *accounts, KeyU64(from), "balance-" + std::to_string(i));
    db->Put(io, *txn, *accounts, KeyU64(to), "balance-" + std::to_string(i));
    if (db->Commit(io, *txn).ok()) out.committed++;
  }
  out.seconds = static_cast<double>(io.now) / kSecond;

  // Power failure, host and device together.
  db.reset();
  ssd.PowerCut(io.now);
  ssd.PowerOn();

  // Reboot and count what survived.
  IoContext io2;
  auto db2_or = Database::Open(io2, &fs, &fs, dbo);
  if (!db2_or.ok()) {
    return out;  // recovered stays false.
  }
  out.recovered = true;
  std::unique_ptr<Database> db2 = std::move(*db2_or);
  auto tid = db2->GetTreeId("accounts");
  if (tid.ok()) {
    for (uint64_t a = 0; a < 20; ++a) {
      std::string v;
      if (db2->Get(io2, *tid, KeyU64(a), &v).ok()) out.survived++;
    }
  }
  return out;
}

}  // namespace

int main() {
  printf("Bank ledger, OFF/OFF configuration (no barriers, no double-write)\n");
  printf("%-24s %10s %10s %12s %10s\n", "device", "commits", "time(s)",
         "recovered", "accounts");
  for (bool durable : {true, false}) {
    const Outcome o = RunScenario(durable);
    printf("%-24s %10d %10.3f %12s %7d/20\n",
           durable ? "DuraSSD (durable cache)" : "SSD-A (volatile cache)",
           o.committed, o.seconds, o.recovered ? "yes" : "NO",
           o.survived);
  }
  printf("\nThe volatile device acknowledged the same commits, then lost "
         "them:\nfsync never flushed its cache. The durable cache keeps the "
         "same speed\nwithout the loss — the paper's core claim.\n");
  return 0;
}
