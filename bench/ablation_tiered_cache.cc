// Ablation: TieredDevice — flash as an extended cache over an HDD
// capacity tier (FaCE lineage), vs the raw capacity tier, vs cache size,
// and warm vs cold recovery.
//
// Three measurements:
//   - Hot-set sweep: 4KB mixed read/write traffic with a 95/5 hot skew,
//     swept over the flash-tier size (% of capacity). Reported per size:
//     `hot_iops` (throughput) and `tier_hit_ratio` (regression-guarded) —
//     the acceptance claim is >= 2x the raw-HDD IOPS at >= 0.9 hit ratio
//     once the hot set fits the flash tier.
//   - Raw capacity baseline: the identical workload on the bare HDD.
//   - Rewarm A/B: build a hot cache, cut power, recover, and re-read the
//     hot set. `rewarm_seconds` (regression-guarded, lower is better) is
//     the virtual time of that re-read pass: warm recovery serves it from
//     the journal-rebuilt directory at flash speed; the cold-start arm
//     re-fetches everything from the disk. The warm/cold ratio is the
//     paper-style faster-recovery claim (< 0.1 gated in CI).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "bench/bench_json.h"
#include "ssd/hdd_device.h"
#include "ssd/ssd_config.h"
#include "tier/tiered_device.h"

namespace durassd {
namespace {

constexpr uint32_t kSectorBytes = 4 * kKiB;

uint64_t Rng(uint64_t* state) {
  *state ^= *state << 13;
  *state ^= *state >> 7;
  *state ^= *state << 17;
  return *state;
}

struct WorkloadShape {
  uint64_t capacity_sectors;
  uint64_t hot_sectors;
  uint64_t ops;
};

TieredConfig TierConfig(const WorkloadShape& shape, double flash_pct) {
  TieredConfig tc;
  tc.flash = SsdConfig::DuraSsd();
  tc.flash.store_data = false;  // Timing-only: keeps big sweeps cheap.
  tc.capacity_is_hdd = true;
  tc.capacity_hdd.num_sectors = shape.capacity_sectors;
  tc.flash_pct = flash_pct;
  return tc;
}

/// The skewed op stream: 95% of ops land uniformly in the hot set, the
/// rest uniformly across the whole device; 60% reads / 40% writes.
/// Identical sequencing for the tiered and the raw-HDD arm.
template <typename Dev>
double RunHotSkew(Dev& dev, const WorkloadShape& shape, uint64_t seed) {
  uint64_t rng = seed;
  const std::string sector(kSectorBytes, 'w');
  SimTime t = 0;
  // Warm-up: populate the hot set once (uncounted).
  for (Lpn l = 0; l < shape.hot_sectors; ++l) {
    t = dev.Write(t, l, sector).done;
  }
  const SimTime start = t;
  for (uint64_t i = 0; i < shape.ops; ++i) {
    const bool hot = Rng(&rng) % 100 < 95;
    const Lpn lpn = hot ? Rng(&rng) % shape.hot_sectors
                        : Rng(&rng) % shape.capacity_sectors;
    if (Rng(&rng) % 100 < 60) {
      const auto r = dev.Read(t, lpn, 1, nullptr);
      if (!r.status.ok()) break;
      t = r.done;
    } else {
      const auto w = dev.Write(t, lpn, sector);
      if (!w.status.ok()) break;
      t = w.done;
    }
  }
  const SimTime window = t - start;
  return window > 0 ? static_cast<double>(shape.ops) * kSecond /
                          static_cast<double>(window)
                    : 0.0;
}

double RunSweep(const WorkloadShape& shape, BenchJson* json) {
  printf("Hot-set sweep: 4KB 95/5-skew 60r/40w, hot set %llu MiB over a\n"
         "%llu MiB HDD capacity tier\n",
         static_cast<unsigned long long>(shape.hot_sectors * kSectorBytes /
                                         kMiB),
         static_cast<unsigned long long>(shape.capacity_sectors *
                                         kSectorBytes / kMiB));

  HddDevice::Config hc;
  hc.num_sectors = shape.capacity_sectors;
  hc.store_data = false;
  HddDevice raw(hc);
  const double raw_iops = RunHotSkew(raw, shape, 42);
  printf("  %-16s %10.0f IOPS\n", "raw HDD", raw_iops);
  if (json->enabled()) {
    BenchResult row("hot_skew/raw_hdd");
    row.Param("ops", shape.ops).Throughput(raw_iops, "iops");
    json->Add(std::move(row));
  }

  double speedup_at_10 = 0;
  for (const double pct : {5.0, 10.0, 20.0}) {
    auto tier = MakeTieredDevice(TierConfig(shape, pct));
    const double iops = RunHotSkew(*tier, shape, 42);
    const double hit = tier->stats().hit_ratio();
    const double speedup = raw_iops > 0 ? iops / raw_iops : 0;
    if (pct == 10.0) speedup_at_10 = speedup;
    printf("  tiered %4.0f%%    %10.0f IOPS   hit %.3f   %5.1fx raw   "
           "(%llu slots)\n",
           pct, iops, hit, speedup,
           static_cast<unsigned long long>(tier->cache_slots()));
    if (json->enabled()) {
      BenchResult row("hot_skew/flash_pct=" +
                      std::to_string(static_cast<int>(pct)));
      row.Param("flash_pct", pct)
          .Param("ops", shape.ops)
          .Param("cache_slots", tier->cache_slots())
          .Throughput(iops, "iops")
          .Value("tier_hit_ratio", hit)
          .Value("hot_iops", iops)
          .Value("tiered_vs_raw_speedup", speedup)
          .Value("destage_runs", tier->stats().destage_runs)
          .Value("destage_sectors", tier->stats().destage_sectors)
          .Value("mean_destage_run_len",
                 tier->stats().destage_runs > 0
                     ? static_cast<double>(tier->stats().destage_sectors) /
                           static_cast<double>(tier->stats().destage_runs)
                     : 0.0);
      json->Add(std::move(row));
    }
  }
  return speedup_at_10;
}

struct RewarmResult {
  double rewarm_seconds = 0;
  double recovery_seconds = 0;
  uint64_t probe_misses = 0;
};

RewarmResult RunRewarm(const WorkloadShape& shape, bool warm) {
  TieredConfig tc = TierConfig(shape, 10.0);
  tc.warm_recovery = warm;
  auto tier = MakeTieredDevice(tc);
  const std::string sector(kSectorBytes, 'w');
  SimTime t = 0;
  for (Lpn l = 0; l < shape.hot_sectors; ++l) {
    t = tier->Write(t, l, sector).done;
  }
  tier->PowerCut(t + 1);
  const SimTime up = tier->PowerOn();

  // Rewarm probe: one pass over the hot set in prime-stride order (not
  // sequential, so the scan filter never bypasses admission in the cold
  // arm). Virtual duration of the pass = the rewarm cost.
  RewarmResult res;
  res.recovery_seconds =
      static_cast<double>(tier->last_recovery_duration()) / kSecond;
  const uint64_t misses0 = tier->stats().tier_read_misses;
  SimTime tp = up + 1;
  const SimTime probe_start = tp;
  const uint64_t stride = 619;  // Coprime with any power-of-two hot set.
  for (uint64_t i = 0; i < shape.hot_sectors; ++i) {
    const Lpn lpn = (i * stride) % shape.hot_sectors;
    const auto r = tier->Read(tp, lpn, 1, nullptr);
    if (!r.status.ok()) break;
    tp = r.done;
  }
  res.rewarm_seconds = static_cast<double>(tp - probe_start) / kSecond;
  res.probe_misses = tier->stats().tier_read_misses - misses0;
  return res;
}

double RunRewarmBench(const WorkloadShape& shape, BenchJson* json) {
  printf("\nWarm vs cold recovery: power cut with a hot cache, then one\n"
         "pass over the hot set\n");
  const RewarmResult w = RunRewarm(shape, true);
  const RewarmResult c = RunRewarm(shape, false);
  const double ratio =
      c.rewarm_seconds > 0 ? w.rewarm_seconds / c.rewarm_seconds : 0;
  printf("  %-6s rewarm %8.3f s   recovery %8.3f s   misses %llu\n", "warm",
         w.rewarm_seconds, w.recovery_seconds,
         static_cast<unsigned long long>(w.probe_misses));
  printf("  %-6s rewarm %8.3f s   recovery %8.3f s   misses %llu\n", "cold",
         c.rewarm_seconds, c.recovery_seconds,
         static_cast<unsigned long long>(c.probe_misses));
  printf("  warm/cold rewarm ratio: %.4f\n", ratio);
  if (json->enabled()) {
    BenchResult warm_row("recovery/warm");
    warm_row.Param("hot_sectors", shape.hot_sectors)
        .Value("rewarm_seconds", w.rewarm_seconds)
        .Value("recovery_seconds", w.recovery_seconds)
        .Value("probe_misses", w.probe_misses)
        .Value("rewarm_ratio", ratio);
    json->Add(std::move(warm_row));
    BenchResult cold_row("recovery/cold");
    cold_row.Param("hot_sectors", shape.hot_sectors)
        .Value("rewarm_seconds", c.rewarm_seconds)
        .Value("recovery_seconds", c.recovery_seconds)
        .Value("probe_misses", c.probe_misses);
    json->Add(std::move(cold_row));
  }
  return ratio;
}

}  // namespace
}  // namespace durassd

int main(int argc, char** argv) {
  durassd::WorkloadShape shape;
  shape.capacity_sectors = 32768;  // 128 MiB.
  shape.hot_sectors = 2048;        // 8 MiB hot set.
  shape.ops = 20000;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--quick") == 0) {
      quick = true;
      shape.capacity_sectors = 16384;  // 64 MiB.
      shape.hot_sectors = 512;         // 2 MiB hot set.
      shape.ops = 4000;
    }
  }
  durassd::BenchJson json("ablation_tiered_cache",
                          durassd::BenchJson::PathFromArgs(argc, argv), quick);
  json.Config("capacity_sectors", shape.capacity_sectors);
  json.Config("hot_sectors", shape.hot_sectors);
  json.Config("ops", shape.ops);
  const double speedup = durassd::RunSweep(shape, &json);
  const double ratio = durassd::RunRewarmBench(shape, &json);
  // The acceptance claims, asserted here so a plain bench run (not just
  // bench_compare) fails loudly if either regresses to nonsense.
  if (speedup < 2.0) {
    std::fprintf(stderr, "FAIL: tiered speedup %.2fx < 2x raw HDD\n", speedup);
    return 1;
  }
  if (ratio >= 0.1) {
    std::fprintf(stderr, "FAIL: warm rewarm %.3f >= 10%% of cold\n", ratio);
    return 1;
  }
  return json.WriteFile() ? 0 : 1;
}
