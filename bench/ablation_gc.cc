// Ablation (Sec. 1, tail latency): garbage-collection pressure vs read
// latency percentiles. Fills the device to different utilizations, then
// runs a mixed read/write workload and reports read p50/p99/max — GC on a
// busy plane can block a read for tens of milliseconds, the "read latency
// increased by a factor of 100" effect the paper cites.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_json.h"
#include "common/histogram.h"
#include "common/random.h"
#include "host/sim_file.h"
#include "sim/client_scheduler.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {
namespace {

void RunOne(double fill_fraction, uint64_t ops, BenchJson* json) {
  SsdConfig cfg = SsdConfig::DuraSsd();
  cfg.geometry = FlashGeometry::Tiny();
  cfg.geometry.blocks_per_plane = 64;
  cfg.geometry.pages_per_block = 32;
  cfg.over_provision = 0.10;
  cfg.store_data = false;
  // Small device cache so reads actually reach the NAND (and its GC-busy
  // planes) instead of the DRAM.
  cfg.write_buffer_sectors = 128;
  cfg.cache_capacity_sectors = 256;
  SsdDevice dev(cfg);

  const uint64_t sectors = dev.num_sectors();
  const uint64_t fill = static_cast<uint64_t>(fill_fraction * sectors);
  const std::string payload(cfg.sector_size, 'g');

  // Precondition: fill the logical space, then overwrite randomly to build
  // up invalid pages.
  SimTime t = 0;
  for (Lpn l = 0; l < fill; ++l) {
    t = dev.Write(t, l, payload).done;
  }
  Random rng(3);
  for (uint64_t i = 0; i < fill; ++i) {
    t = dev.Write(t, rng.Uniform(fill), payload).done;
  }

  Histogram reads;
  std::vector<Random> rngs;
  for (int c = 0; c < 8; ++c) rngs.emplace_back(100 + c);
  const auto fn = [&](uint32_t client, SimTime now) -> SimTime {
    Random& r = rngs[client];
    if (r.Bernoulli(0.5)) {
      const auto res = dev.Read(now, r.Uniform(fill), 1, nullptr);
      reads.Record(res.done - now);
      return res.done;
    }
    return dev.Write(now, r.Uniform(fill), payload).done;
  };
  ClientScheduler::Run(8, ops, t, fn);

  printf("  %6.0f%% %10llu %10.2f %10.2f %10.2f %10.2f\n",
         fill_fraction * 100,
         (unsigned long long)dev.ftl().stats().gc_runs,
         reads.Mean() / 1e6, static_cast<double>(reads.Percentile(50)) / 1e6,
         static_cast<double>(reads.Percentile(99)) / 1e6,
         static_cast<double>(reads.max()) / 1e6);
  if (json->enabled()) {
    BenchResult row("fill=" + std::to_string(fill_fraction));
    row.Param("fill_fraction", fill_fraction)
        .Value("gc_runs", dev.ftl().stats().gc_runs)
        .LatencyNs(reads)
        .Device(dev);
    json->Add(std::move(row));
  }
}

}  // namespace
}  // namespace durassd

int main(int argc, char** argv) {
  uint64_t ops = 30000;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--quick") == 0) {
      quick = true;
      ops = 8000;
    }
  }
  durassd::BenchJson json("ablation_gc",
                          durassd::BenchJson::PathFromArgs(argc, argv), quick);
  json.Config("ops", ops);
  printf("Ablation: device fill level vs GC activity and read latency (ms)\n");
  printf("  %7s %10s %10s %10s %10s %10s\n", "fill", "gc_runs", "mean",
         "p50", "p99", "max");
  for (double f : {0.3, 0.6, 0.85, 0.95}) durassd::RunOne(f, ops, &json);
  return json.WriteFile() ? 0 : 1;
}
