// Reproduces Table 1: "Effect of fsync and flush cache on 4KB page size
// random write IOPS" — four devices (HDD, SSD-A, SSD-B, DuraSSD), storage
// cache OFF/ON, fsync every {1,4,8,16,32,64,128,256,never} writes, plus the
// DuraSSD "ON (NoBarrier)" row. Single fio thread, 4KB random writes.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "ssd/device_factory.h"
#include "workloads/fiosim.h"

namespace durassd {
namespace {

constexpr uint32_t kFsyncSteps[] = {1, 4, 8, 16, 32, 64, 128, 256, 0};

void PrintRow(const char* label, const std::vector<double>& iops) {
  printf("  %-14s", label);
  for (double v : iops) printf(" %8.0f", v);
  printf("\n");
}

std::vector<double> RunSweep(DeviceModel model, const char* device_name,
                             bool cache_on, bool barriers, uint64_t ops,
                             BenchJson* json) {
  std::vector<double> out;
  for (uint32_t every : kFsyncSteps) {
    auto device = MakeDevice(model, cache_on, /*store_data=*/false);
    FioJob job;
    job.mode = FioJob::Mode::kRandWrite;
    job.block_bytes = 4 * kKiB;
    job.threads = 1;
    job.ops = ops;
    job.fsync_every = every;
    job.write_barriers = barriers;
    const FioResult r = RunFio(device.get(), job);
    out.push_back(r.iops);
    if (json->enabled()) {
      BenchResult row(std::string(device_name) + "/" +
                      (cache_on ? "cache_on" : "cache_off") +
                      (barriers ? "" : "/no_barrier") + "/fsync_every=" +
                      std::to_string(every));
      row.Param("device", device_name)
          .Param("cache_on", cache_on)
          .Param("write_barriers", barriers)
          .Param("fsync_every", static_cast<uint64_t>(every))
          .Throughput(r.iops, "iops")
          .LatencyNs(r.latency);
      json->Add(std::move(row));
    }
  }
  return out;
}

void RunTable(uint64_t ops, BenchJson* json) {
  printf("Table 1: 4KB random write IOPS vs fsync frequency\n");
  printf("  %-14s", "writes/fsync:");
  for (uint32_t every : kFsyncSteps) {
    if (every == 0) {
      printf(" %8s", "no-fsync");
    } else {
      printf(" %8u", every);
    }
  }
  printf("\n");

  const struct {
    DeviceModel model;
    const char* name;
  } kDevices[] = {
      {DeviceModel::kHdd, "HDD"},
      {DeviceModel::kSsdA, "SSD-A"},
      {DeviceModel::kSsdB, "SSD-B"},
      {DeviceModel::kDuraSsd, "DuraSSD"},
  };
  for (const auto& dev : kDevices) {
    printf(" %s\n", dev.name);
    const uint64_t dev_ops = dev.model == DeviceModel::kHdd ? ops / 4 : ops;
    PrintRow("cache OFF", RunSweep(dev.model, dev.name, /*cache_on=*/false,
                                   /*barriers=*/true, dev_ops, json));
    PrintRow("cache ON", RunSweep(dev.model, dev.name, /*cache_on=*/true,
                                  /*barriers=*/true, dev_ops, json));
    if (dev.model == DeviceModel::kDuraSsd) {
      PrintRow("ON (NoBarrier)",
               RunSweep(dev.model, dev.name, /*cache_on=*/true,
                        /*barriers=*/false, ops, json));
    }
  }
}

}  // namespace
}  // namespace durassd

int main(int argc, char** argv) {
  uint64_t ops = 20000;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--quick") == 0) {
      quick = true;
      ops = 4000;
    }
  }
  durassd::BenchJson json("table1_fsync_iops",
                          durassd::BenchJson::PathFromArgs(argc, argv), quick);
  json.Config("ops", ops).Config("block_bytes", uint64_t{4 * durassd::kKiB});
  durassd::RunTable(ops, &json);
  return json.WriteFile() ? 0 : 1;
}
