// Ablation (Sec. 3.3): host queue-depth sweep over the asynchronous
// submit/complete path, in both queue modes (ordered NCQ vs unordered).
//
// Two workloads:
//   - fiosim 4KB random write at iodepth 1..32 (a single submitter keeping
//     QD commands in flight) — the device-level throughput the paper's
//     ordered-queue argument rests on: queue depth buys channel overlap,
//     and the ordered queue keeps durability = submission order at no
//     sustained cost.
//   - WAL-commit: QD concurrent committers on minibase (one Put per
//     transaction, commit-time log sync with barriers on). Concurrency
//     turns into group commit — committers share one device FLUSH — so
//     commits/s scales past the single-flush rate.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "db/database.h"
#include "host/sim_file.h"
#include "sim/client_scheduler.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"
#include "workloads/fiosim.h"

namespace durassd {
namespace {

constexpr uint32_t kDepths[] = {1, 2, 4, 8, 16, 32};

SsdConfig DeviceConfig(bool ordered, bool store_data) {
  SsdConfig cfg = SsdConfig::DuraSsd();
  cfg.ordered_queue = ordered;
  cfg.store_data = store_data;
  return cfg;
}

void RunFioSweep(uint64_t ops, BenchJson* json) {
  printf("Ablation: fiosim 4KB randwrite IOPS vs submission queue depth\n");
  printf("  %-10s %-4s %12s %14s %12s\n", "queue", "QD", "IOPS",
         "p99 lat(us)", "ack clamps");
  for (const bool ordered : {true, false}) {
    for (const uint32_t qd : kDepths) {
      SsdDevice dev(DeviceConfig(ordered, /*store_data=*/false));
      FioJob job;
      job.mode = FioJob::Mode::kRandWrite;
      job.iodepth = qd;
      job.ops = ops;
      job.write_barriers = false;  // The DuraSSD nobarrier deployment.
      job.working_set_bytes = 64 * kMiB;
      const FioResult r = RunFio(&dev, job);
      printf("  %-10s %-4u %12.0f %14.1f %12llu\n",
             ordered ? "ordered" : "unordered", qd, r.iops,
             static_cast<double>(r.latency.Percentile(0.99)) / 1000.0,
             static_cast<unsigned long long>(dev.stats().ordered_ack_clamps));
      if (json->enabled()) {
        BenchResult row(std::string(ordered ? "ordered" : "unordered") +
                        "/qd=" + std::to_string(qd));
        row.Param("workload", "fiosim_randwrite")
            .Param("ordered_queue", ordered)
            .Param("iodepth", static_cast<uint64_t>(qd))
            .Throughput(r.iops, "iops")
            .LatencyNs(r.latency)
            .Value("ordered_ack_clamps", dev.stats().ordered_ack_clamps)
            .Device(dev);
        json->Add(std::move(row));
      }
    }
  }
}

struct CommitResult {
  double commits_per_sec = 0;
  uint64_t acked = 0;
  Wal::Stats wal;
};

CommitResult RunCommitters(bool ordered, uint32_t clients, uint64_t ops) {
  CommitResult out;
  SsdConfig dc = DeviceConfig(ordered, /*store_data=*/true);
  SsdDevice data_dev(dc);
  SsdDevice log_dev(dc);
  SimFileSystem::Options fso;
  fso.write_barriers = true;  // Commit fsync issues a real FLUSH.
  SimFileSystem data_fs(&data_dev, fso);
  SimFileSystem log_fs(&log_dev, fso);

  IoContext io;
  Database::Options dbo;
  dbo.pool_bytes = 16 * kMiB;
  dbo.double_write = false;
  dbo.checkpoint_log_bytes = 64 * kMiB;
  auto opened = Database::Open(io, &data_fs, &log_fs, dbo);
  if (!opened.ok()) {
    fprintf(stderr, "Database::Open failed: %s\n",
            opened.status().ToString().c_str());
    return out;
  }
  std::unique_ptr<Database> db = std::move(*opened);
  auto tree = db->CreateTree(io, "t");
  if (!tree.ok()) return out;

  const std::string value(120, 'v');
  std::vector<uint32_t> op_count(clients, 0);
  // Per-operation IoContext seeded from the client's local clock (the
  // TPC-C/LinkBench idiom): commits whose local time falls inside another
  // commit's pending sync window ride it — group commit.
  const auto fn = [&](uint32_t client, SimTime now) -> SimTime {
    IoContext cio{now};
    const std::string key =
        "c" + std::to_string(client) + "-" + std::to_string(op_count[client]);
    op_count[client]++;
    auto txn = db->Begin(cio);
    if (txn.ok() && db->Put(cio, *txn, *tree, key, value).ok() &&
        db->Commit(cio, *txn).ok()) {
      out.acked++;
    }
    return cio.now;
  };
  const ClientScheduler::RunResult r =
      ClientScheduler::Run(clients, ops, io.now, fn);
  out.commits_per_sec = r.OpsPerSecond();
  out.wal = db->wal_stats();
  return out;
}

void RunCommitSweep(uint64_t ops, BenchJson* json) {
  printf("\nAblation: WAL commits/s vs concurrent committers (group commit)\n");
  printf("  %-10s %-4s %12s %12s %12s %10s\n", "queue", "QD", "commits/s",
         "sync groups", "group rides", "max group");
  for (const bool ordered : {true, false}) {
    for (const uint32_t qd : kDepths) {
      const CommitResult r = RunCommitters(ordered, qd, ops);
      printf("  %-10s %-4u %12.0f %12llu %12llu %10llu\n",
             ordered ? "ordered" : "unordered", qd, r.commits_per_sec,
             static_cast<unsigned long long>(r.wal.sync_groups),
             static_cast<unsigned long long>(r.wal.group_rides),
             static_cast<unsigned long long>(r.wal.max_group_commit));
      if (json->enabled()) {
        BenchResult row(std::string(ordered ? "ordered" : "unordered") +
                        "/committers=" + std::to_string(qd));
        row.Param("workload", "wal_commit")
            .Param("ordered_queue", ordered)
            .Param("committers", static_cast<uint64_t>(qd))
            .Throughput(r.commits_per_sec, "commits/s")
            .Value("acked_commits", r.acked)
            .Value("wal_syncs", r.wal.syncs)
            .Value("sync_groups", r.wal.sync_groups)
            .Value("group_rides", r.wal.group_rides)
            .Value("max_group_commit", r.wal.max_group_commit);
        json->Add(std::move(row));
      }
    }
  }
}

}  // namespace
}  // namespace durassd

int main(int argc, char** argv) {
  uint64_t fio_ops = 40000;
  uint64_t commit_ops = 4000;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--quick") == 0) {
      quick = true;
      fio_ops = 8000;
      commit_ops = 800;
    }
  }
  durassd::BenchJson json("ablation_queue_depth",
                          durassd::BenchJson::PathFromArgs(argc, argv), quick);
  json.Config("fio_ops", fio_ops);
  json.Config("commit_ops", commit_ops);
  durassd::RunFioSweep(fio_ops, &json);
  durassd::RunCommitSweep(commit_ops, &json);
  return json.WriteFile() ? 0 : 1;
}
