// Reproduces Table 2: "Effect of page size on IOPS" for (a) DuraSSD and
// (b) the disk drive, across 16/8/4 KB block sizes.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "ssd/device_factory.h"
#include "workloads/fiosim.h"

namespace durassd {
namespace {

constexpr uint32_t kPageSizes[] = {16 * kKiB, 8 * kKiB, 4 * kKiB};

BenchJson* g_json = nullptr;

double RunOne(const char* label, DeviceModel model, FioJob::Mode mode,
              uint32_t block, uint32_t threads, uint32_t fsync_every,
              bool barriers, uint64_t ops) {
  auto device = MakeDevice(model, /*cache_on=*/true, /*store_data=*/false);
  FioJob job;
  job.mode = mode;
  job.block_bytes = block;
  job.threads = threads;
  job.ops = ops;
  job.fsync_every = fsync_every;
  job.write_barriers = barriers;
  const FioResult r = RunFio(device.get(), job);
  if (g_json != nullptr && g_json->enabled()) {
    BenchResult row(std::string(label) + "/block=" +
                    std::to_string(block / kKiB) + "KB");
    row.Param("block_bytes", static_cast<uint64_t>(block))
        .Param("threads", static_cast<uint64_t>(threads))
        .Param("fsync_every", static_cast<uint64_t>(fsync_every))
        .Param("write_barriers", barriers)
        .Throughput(r.iops, "iops")
        .LatencyNs(r.latency);
    g_json->Add(std::move(row));
  }
  return r.iops;
}

void Row(const char* label, const std::vector<double>& v) {
  printf("  %-28s %8.0f %8.0f %8.0f\n", label, v[0], v[1], v[2]);
}

void RunTable(uint64_t ops) {
  printf("Table 2: random IOPS vs page size\n");
  printf("  %-28s %8s %8s %8s\n", "", "16KB", "8KB", "4KB");

  printf(" (a) DuraSSD\n");
  std::vector<double> r;
  for (uint32_t b : kPageSizes) {
    r.push_back(RunOne("durassd_read_128t", DeviceModel::kDuraSsd,
                       FioJob::Mode::kRandRead, b, 128, 0, true, 4 * ops));
  }
  Row("Read-only (128 threads)", r);
  r.clear();
  for (uint32_t b : kPageSizes) {
    r.push_back(RunOne("durassd_write_1fsync", DeviceModel::kDuraSsd,
                       FioJob::Mode::kRandWrite, b, 1, 1, true, ops / 8));
  }
  Row("Write-only (1-fsync)", r);
  r.clear();
  for (uint32_t b : kPageSizes) {
    r.push_back(RunOne("durassd_write_256fsync", DeviceModel::kDuraSsd,
                       FioJob::Mode::kRandWrite, b, 1, 256, true, ops));
  }
  Row("Write-only (256-fsync)", r);
  r.clear();
  for (uint32_t b : kPageSizes) {
    r.push_back(RunOne("durassd_write_128t_nobarrier", DeviceModel::kDuraSsd,
                       FioJob::Mode::kRandWrite, b, 128, 0, false, 4 * ops));
  }
  Row("Write-only (128 no-barrier)", r);

  printf(" (b) Harddisk\n");
  r.clear();
  for (uint32_t b : kPageSizes) {
    r.push_back(RunOne("hdd_read_128t", DeviceModel::kHdd,
                       FioJob::Mode::kRandRead, b, 128, 0, true, ops / 4));
  }
  Row("Read-only (128 threads)", r);
  r.clear();
  for (uint32_t b : kPageSizes) {
    r.push_back(RunOne("hdd_write_128t", DeviceModel::kHdd,
                       FioJob::Mode::kRandWrite, b, 128, 0, true, ops / 4));
  }
  Row("Write-only (128 threads)", r);
}

}  // namespace
}  // namespace durassd

int main(int argc, char** argv) {
  uint64_t ops = 20000;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--quick") == 0) {
      quick = true;
      ops = 4000;
    }
  }
  durassd::BenchJson json("table2_page_size",
                          durassd::BenchJson::PathFromArgs(argc, argv), quick);
  json.Config("ops", ops);
  durassd::g_json = &json;
  durassd::RunTable(ops);
  return json.WriteFile() ? 0 : 1;
}
