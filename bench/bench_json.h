#ifndef DURASSD_BENCH_BENCH_JSON_H_
#define DURASSD_BENCH_BENCH_JSON_H_

// Machine-readable bench output (`--json <path>`). Every bench binary emits
// one document with a stable schema so run_benches.sh --json can aggregate
// them into BENCH_results.json:
//
//   {
//     "schema_version": 1,
//     "bench": "<binary name>",
//     "quick": false,
//     "config": { ... bench-wide knobs ... },
//     "results": [
//       {
//         "name": "<row label>",
//         "params": { ... per-row knobs ... },
//         "throughput": {"value": 1234.5, "unit": "txn/s"},
//         "latency_ns": {"count","mean","min","p25",...,"p999","max"},
//         "values": { ... extra scalar outputs (WA, reductions, ...) ... },
//         "device": {"stats": {...}, "faults": {...}, "metrics": {...}},
//         "metrics": { ... engine-level registry snapshot ... }
//       }, ...
//     ]
//   }
//
// Sections a bench does not populate are simply absent. Text output is
// unchanged; JSON is written on top of it at exit.

#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/json.h"
#include "common/metrics.h"
#include "ssd/ssd_device.h"

namespace durassd {

namespace bench_json_internal {

inline std::string Scalar(uint64_t v) {
  JsonWriter w;
  w.Uint(v);
  return w.TakeString();
}
inline std::string Scalar(int64_t v) {
  JsonWriter w;
  w.Int(v);
  return w.TakeString();
}
inline std::string Scalar(double v) {
  JsonWriter w;
  w.Double(v);
  return w.TakeString();
}
inline std::string Scalar(bool v) {
  JsonWriter w;
  w.Bool(v);
  return w.TakeString();
}
inline std::string Scalar(const std::string& v) {
  JsonWriter w;
  w.String(v);
  return w.TakeString();
}
inline std::string Scalar(const char* v) { return Scalar(std::string(v)); }

using Fields = std::vector<std::pair<std::string, std::string>>;

inline void AppendFields(const Fields& fields, JsonWriter* w) {
  w->BeginObject();
  for (const auto& [key, raw] : fields) {
    w->Key(key);
    w->Raw(raw);
  }
  w->EndObject();
}

inline void AppendDeviceJson(const SsdDevice& dev, JsonWriter* w) {
  const SsdDevice::Stats& s = dev.stats();
  const SsdDevice::FaultStats f = dev.fault_stats();
  w->BeginObject();
  w->Key("stats");
  w->BeginObject();
  w->Key("host_writes"); w->Uint(s.host_writes);
  w->Key("host_written_sectors"); w->Uint(s.host_written_sectors);
  w->Key("host_reads"); w->Uint(s.host_reads);
  w->Key("host_read_sectors"); w->Uint(s.host_read_sectors);
  w->Key("cache_read_hits"); w->Uint(s.cache_read_hits);
  w->Key("cache_read_misses"); w->Uint(s.cache_read_misses);
  w->Key("cache_full_hits"); w->Uint(s.cache_full_hits);
  w->Key("cache_partial_hits"); w->Uint(s.cache_partial_hits);
  w->Key("flushes"); w->Uint(s.flushes);
  w->Key("write_stalls"); w->Uint(s.write_stalls);
  w->Key("write_stall_time_ns"); w->Int(s.write_stall_time);
  w->Key("dumped_pages"); w->Uint(s.dumped_pages);
  w->Key("replayed_pages"); w->Uint(s.replayed_pages);
  w->Key("dropped_incomplete"); w->Uint(s.dropped_incomplete);
  w->Key("capacitor_overruns"); w->Uint(s.capacitor_overruns);
  w->Key("reads_stalled_by_flush"); w->Uint(s.reads_stalled_by_flush);
  w->Key("destage_absorbed"); w->Uint(s.destage_absorbed);
  w->Key("destage_batches"); w->Uint(s.destage_batches);
  w->Key("multi_plane_programs"); w->Uint(dev.flash().stats().multi_plane_programs);
  w->Key("log_segments"); w->Uint(s.log_segments);
  w->Key("log_segment_sectors"); w->Uint(s.log_segment_sectors);
  w->Key("log_replayed_segments"); w->Uint(s.log_replayed_segments);
  w->Key("log_torn_segments"); w->Uint(s.log_torn_segments);
  w->Key("log_recovered_sectors"); w->Uint(s.log_recovered_sectors);
  w->Key("log_dropped_sectors"); w->Uint(s.log_dropped_sectors);
  w->Key("write_amplification"); w->Double(dev.WriteAmplification());
  w->EndObject();
  w->Key("faults");
  w->BeginObject();
  w->Key("ecc_corrected"); w->Uint(f.ecc_corrected);
  w->Key("read_retries"); w->Uint(f.read_retries);
  w->Key("uncorrectable_reads"); w->Uint(f.uncorrectable_reads);
  w->Key("program_fails"); w->Uint(f.program_fails);
  w->Key("erase_fails"); w->Uint(f.erase_fails);
  w->Key("retired_blocks"); w->Uint(f.retired_blocks);
  w->EndObject();
  w->Key("metrics");
  dev.metrics().AppendJson(w);
  w->EndObject();
}

}  // namespace bench_json_internal

/// One row of a bench's results table. Build with the fluent setters, then
/// hand it to BenchJson::Add. All sections are optional except the name.
class BenchResult {
 public:
  explicit BenchResult(std::string name) : name_(std::move(name)) {}

  template <typename T>
  BenchResult& Param(const char* key, T v) {
    params_.emplace_back(key, bench_json_internal::Scalar(v));
    return *this;
  }

  BenchResult& Throughput(double value, const char* unit) {
    JsonWriter w;
    w.BeginObject();
    w.Key("value"); w.Double(value);
    w.Key("unit"); w.String(unit);
    w.EndObject();
    throughput_ = w.TakeString();
    return *this;
  }

  /// Percentile summary of a latency histogram (fixed Percentile math).
  BenchResult& LatencyNs(const Histogram& h) {
    JsonWriter w;
    AppendHistogramJson(h, &w);
    latency_ = w.TakeString();
    return *this;
  }

  /// Extra scalar outputs: write amplification, reduction factors, counts.
  template <typename T>
  BenchResult& Value(const char* key, T v) {
    values_.emplace_back(key, bench_json_internal::Scalar(v));
    return *this;
  }

  /// Device section: Stats + FaultStats + the device's metrics registry.
  BenchResult& Device(const SsdDevice& dev) {
    JsonWriter w;
    bench_json_internal::AppendDeviceJson(dev, &w);
    device_ = w.TakeString();
    return *this;
  }

  /// Engine-level registry snapshot (Database/KvStore metrics).
  BenchResult& Metrics(const MetricsRegistry& m) {
    metrics_ = m.ToJson();
    return *this;
  }

  void AppendTo(JsonWriter* w) const {
    w->BeginObject();
    w->Key("name");
    w->String(name_);
    if (!params_.empty()) {
      w->Key("params");
      bench_json_internal::AppendFields(params_, w);
    }
    if (!throughput_.empty()) {
      w->Key("throughput");
      w->Raw(throughput_);
    }
    if (!latency_.empty()) {
      w->Key("latency_ns");
      w->Raw(latency_);
    }
    if (!values_.empty()) {
      w->Key("values");
      bench_json_internal::AppendFields(values_, w);
    }
    if (!device_.empty()) {
      w->Key("device");
      w->Raw(device_);
    }
    if (!metrics_.empty()) {
      w->Key("metrics");
      w->Raw(metrics_);
    }
    w->EndObject();
  }

 private:
  std::string name_;
  bench_json_internal::Fields params_;
  std::string throughput_;
  std::string latency_;
  bench_json_internal::Fields values_;
  std::string device_;
  std::string metrics_;
};

/// Accumulates a bench run's config + results and writes the document at
/// the end. When no --json path was given, every call is a cheap no-op and
/// nothing is written.
class BenchJson {
 public:
  /// Scans argv for "--json <path>" or "--json=<path>"; empty when absent.
  static std::string PathFromArgs(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
        return argv[i + 1];
      }
      if (std::strncmp(argv[i], "--json=", 7) == 0) {
        return argv[i] + 7;
      }
    }
    return "";
  }

  BenchJson(std::string bench_name, std::string path, bool quick)
      : bench_(std::move(bench_name)), path_(std::move(path)), quick_(quick) {}

  bool enabled() const { return !path_.empty(); }

  template <typename T>
  BenchJson& Config(const char* key, T v) {
    config_.emplace_back(key, bench_json_internal::Scalar(v));
    return *this;
  }

  void Add(BenchResult result) {
    JsonWriter w;
    result.AppendTo(&w);
    results_.push_back(w.TakeString());
  }

  std::string Document() const {
    JsonWriter w;
    w.BeginObject();
    w.Key("schema_version"); w.Uint(1);
    w.Key("bench"); w.String(bench_);
    w.Key("quick"); w.Bool(quick_);
    w.Key("config");
    bench_json_internal::AppendFields(config_, &w);
    w.Key("results");
    w.BeginArray();
    for (const std::string& r : results_) w.Raw(r);
    w.EndArray();
    // Terminal completeness marker, written last: a truncated document (the
    // bench crashed or was killed mid-write) cannot contain it, so the
    // aggregation script and bench_compare.py reject partial output instead
    // of silently comparing against it.
    w.Key("complete"); w.Bool(true);
    w.EndObject();
    return w.TakeString();
  }

  /// Writes the document (plus trailing newline) to the --json path.
  /// Returns true when disabled or written successfully.
  bool WriteFile() const {
    if (!enabled()) return true;
    FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s for writing\n", path_.c_str());
      return false;
    }
    const std::string doc = Document();
    const bool ok = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size() &&
                    std::fputc('\n', f) != EOF;
    std::fclose(f);
    if (!ok) std::fprintf(stderr, "short write to %s\n", path_.c_str());
    return ok;
  }

 private:
  std::string bench_;
  std::string path_;
  bool quick_;
  bench_json_internal::Fields config_;
  std::vector<std::string> results_;
};

}  // namespace durassd

#endif  // DURASSD_BENCH_BENCH_JSON_H_
