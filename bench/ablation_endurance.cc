// Reproduces the endurance claim of Sec. 1 (fourth contribution): "the
// absolute amount of data written to flash memory is reduced more than 50%
// by avoiding redundant writes and by utilizing a small page size."
//
// Runs the same LinkBench work in the MySQL default configuration (double-
// write ON, 16KB pages) and the DuraSSD configuration (double-write OFF,
// 4KB pages), comparing bytes the host sent to the data device and bytes
// actually programmed into NAND.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_json.h"
#include "bench/db_bench_util.h"
#include "workloads/linkbench.h"

namespace durassd {
namespace {

struct WriteVolume {
  double host_gib;
  double nand_gib;
  double write_amp;
  uint64_t ecc_corrected;
  uint64_t retired_blocks;
};

// NAND fault knobs (all-zero by default: output identical to a fault-free
// build). Nonzero rates turn the run into an endurance-under-faults study.
FaultInjector::Options g_faults;

BenchJson* g_json = nullptr;

WriteVolume RunConfig(const char* label, bool dwb, uint32_t page_size,
                      uint64_t nodes, uint64_t requests) {
  DbRigConfig rc;
  rc.write_barriers = !dwb;  // Paired knobs: default vs DuraSSD deployment.
  rc.double_write = dwb;
  rc.page_size = page_size;
  rc.pool_bytes = nodes / 14 * kKiB;
  rc.faults = g_faults;
  DbRig rig = MakeDbRig(rc);

  LinkBench::Config lc;
  lc.num_nodes = nodes;
  lc.clients = 64;
  lc.requests = requests;
  LinkBench bench(rig.db.get(), lc);
  if (!bench.Load(rig.io).ok()) abort();

  const uint64_t host0 = rig.data_dev->stats().host_written_sectors;
  const uint64_t nand0 = rig.data_dev->flash().stats().programs;
  if (!bench.Run().ok()) abort();
  const double host_bytes =
      static_cast<double>(rig.data_dev->stats().host_written_sectors - host0) *
      rig.data_dev->sector_size();
  const double nand_bytes =
      static_cast<double>(rig.data_dev->flash().stats().programs - nand0) *
      rig.data_dev->config().geometry.page_size;
  const SsdDevice::FaultStats fs = rig.data_dev->fault_stats();
  if (g_json != nullptr && g_json->enabled()) {
    BenchResult row(label);
    row.Param("double_write", dwb)
        .Param("page_size", static_cast<uint64_t>(page_size))
        .Value("host_gib", host_bytes / kGiB)
        .Value("nand_gib", nand_bytes / kGiB)
        .Value("write_amplification",
               host_bytes > 0 ? nand_bytes / host_bytes : 0.0)
        .Metrics(rig.db->metrics())
        .Device(*rig.data_dev);
    g_json->Add(std::move(row));
  }
  return {host_bytes / kGiB, nand_bytes / kGiB,
          host_bytes > 0 ? nand_bytes / host_bytes : 0, fs.ecc_corrected,
          fs.retired_blocks};
}

bool FaultsActive() {
  return g_faults.read_bit_flip_mean > 0 ||
         g_faults.read_bit_flip_per_erase > 0 ||
         g_faults.program_fail_rate > 0 || g_faults.erase_fail_rate > 0;
}

void RunComparison(uint64_t nodes, uint64_t requests) {
  printf("Ablation: flash write volume per %llu LinkBench requests\n",
         static_cast<unsigned long long>(requests));
  printf("  %-34s %10s %10s %8s\n", "configuration", "host GiB", "NAND GiB",
         "WA");
  const WriteVolume def =
      RunConfig("mysql_default_dwb_16k", true, 16 * kKiB, nodes, requests);
  printf("  %-34s %10.3f %10.3f %8.2f\n",
         "MySQL default (DWB on, 16KB)", def.host_gib, def.nand_gib,
         def.write_amp);
  const WriteVolume dura =
      RunConfig("durassd_nodwb_4k", false, 4 * kKiB, nodes, requests);
  printf("  %-34s %10.3f %10.3f %8.2f\n",
         "DuraSSD mode  (DWB off, 4KB)", dura.host_gib, dura.nand_gib,
         dura.write_amp);
  if (def.nand_gib > 0) {
    printf("  NAND write reduction: %.0f%% (paper claims > 50%%)\n",
           100.0 * (1.0 - dura.nand_gib / def.nand_gib));
  }
  if (FaultsActive()) {
    printf("  Fault handling (data device):\n");
    printf("  %-34s %14s %14s\n", "configuration", "ECC corrected",
           "retired blocks");
    printf("  %-34s %14llu %14llu\n", "MySQL default (DWB on, 16KB)",
           static_cast<unsigned long long>(def.ecc_corrected),
           static_cast<unsigned long long>(def.retired_blocks));
    printf("  %-34s %14llu %14llu\n", "DuraSSD mode  (DWB off, 4KB)",
           static_cast<unsigned long long>(dura.ecc_corrected),
           static_cast<unsigned long long>(dura.retired_blocks));
  }
}

}  // namespace
}  // namespace durassd

int main(int argc, char** argv) {
  uint64_t nodes = 100000;
  uint64_t requests = 60000;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--quick") == 0) {
      quick = true;
      nodes = 30000;
      requests = 15000;
    } else if (strncmp(argv[i], "--read-bitflip-mean=", 20) == 0) {
      durassd::g_faults.read_bit_flip_mean = atof(argv[i] + 20);
    } else if (strncmp(argv[i], "--read-bitflip-per-erase=", 25) == 0) {
      durassd::g_faults.read_bit_flip_per_erase = atof(argv[i] + 25);
    } else if (strncmp(argv[i], "--program-fail-rate=", 20) == 0) {
      durassd::g_faults.program_fail_rate = atof(argv[i] + 20);
    } else if (strncmp(argv[i], "--erase-fail-rate=", 18) == 0) {
      durassd::g_faults.erase_fail_rate = atof(argv[i] + 18);
    } else if (strncmp(argv[i], "--fault-seed=", 13) == 0) {
      durassd::g_faults.seed = strtoull(argv[i] + 13, nullptr, 0);
    }
  }
  durassd::BenchJson json("ablation_endurance",
                          durassd::BenchJson::PathFromArgs(argc, argv), quick);
  json.Config("nodes", nodes).Config("requests", requests);
  durassd::g_json = &json;
  durassd::RunComparison(nodes, requests);
  return json.WriteFile() ? 0 : 1;
}
