#ifndef DURASSD_BENCH_DB_BENCH_UTIL_H_
#define DURASSD_BENCH_DB_BENCH_UTIL_H_

// Shared scaffolding for the database-level benches (Fig. 5/6, Tables 3/4):
// builds the paper's rig — a DuraSSD for data and a second one for the log
// (Sec. 4.2), a file system with the write-barrier knob, and a minibase
// instance in a given barrier x double-write x page-size configuration.

#include <cstdio>
#include <memory>

#include "db/database.h"
#include "host/sim_file.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {

struct DbRig {
  std::unique_ptr<SsdDevice> data_dev;
  std::unique_ptr<SsdDevice> log_dev;
  std::unique_ptr<SimFileSystem> data_fs;
  std::unique_ptr<SimFileSystem> log_fs;
  std::unique_ptr<Database> db;
  IoContext io;
};

struct DbRigConfig {
  bool write_barriers = true;
  bool double_write = true;
  uint32_t page_size = 4 * kKiB;
  uint64_t pool_bytes = 16 * kMiB;
  /// O_DSYNC-style commercial engine (Table 4).
  bool sync_every_page_write = false;
  /// Device sized for bench working sets; store_data must be on (the
  /// engine pages really live there).
  uint32_t blocks_per_plane = 96;
  /// NAND fault injection for both devices (all-zero: inert, numbers are
  /// identical to a fault-free build).
  FaultInjector::Options faults;
  uint32_t ecc_correctable_bits = 8;
};

inline DbRig MakeDbRig(const DbRigConfig& cfg) {
  DbRig rig;
  SsdConfig dc = SsdConfig::DuraSsd();
  dc.geometry.blocks_per_plane = cfg.blocks_per_plane;
  dc.store_data = true;
  dc.faults = cfg.faults;
  dc.ecc_correctable_bits = cfg.ecc_correctable_bits;
  rig.data_dev = std::make_unique<SsdDevice>(dc);
  rig.log_dev = std::make_unique<SsdDevice>(dc);

  SimFileSystem::Options fso;
  fso.write_barriers = cfg.write_barriers;
  rig.data_fs = std::make_unique<SimFileSystem>(rig.data_dev.get(), fso);
  rig.log_fs = std::make_unique<SimFileSystem>(rig.log_dev.get(), fso);

  Database::Options dbo;
  dbo.page_size = cfg.page_size;
  dbo.pool_bytes = cfg.pool_bytes;
  dbo.double_write = cfg.double_write;
  dbo.sync_every_page_write = cfg.sync_every_page_write;
  dbo.checkpoint_log_bytes = 8 * kMiB;  // A few checkpoints per run.
  auto db = Database::Open(rig.io, rig.data_fs.get(), rig.log_fs.get(), dbo);
  if (!db.ok()) {
    fprintf(stderr, "Database::Open failed: %s\n",
            db.status().ToString().c_str());
    abort();
  }
  rig.db = std::move(*db);
  return rig;
}

}  // namespace durassd

#endif  // DURASSD_BENCH_DB_BENCH_UTIL_H_
