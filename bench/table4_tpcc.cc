// Reproduces Table 4: TPC-C throughput (tpmC) with write barriers on/off
// across page sizes {16, 8, 4 KB}, on a commercial-RDBMS-style engine that
// requests a barrier for every page write (O_DSYNC semantics, Sec. 4.3.2).
// The paper's buffer was 2GB against a ~100GB database (1:50); the harness
// keeps a similarly tight ratio at simulator scale.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_json.h"
#include "bench/db_bench_util.h"
#include "workloads/tpcc.h"

namespace durassd {
namespace {

BenchJson* g_json = nullptr;

double RunConfig(bool barriers, uint32_t page_size, const Tpcc::Config& tc,
                 uint64_t pool_bytes) {
  DbRigConfig rc;
  rc.write_barriers = barriers;
  rc.double_write = false;  // The commercial server relies on O_DSYNC.
  rc.page_size = page_size;
  rc.pool_bytes = pool_bytes;
  // O_DSYNC: a write barrier for every page write (when barriers are on,
  // each write is followed by a real FLUSH CACHE; with barriers off the
  // fsync is nearly free — exactly the knob Table 4 flips).
  rc.sync_every_page_write = true;
  DbRig rig = MakeDbRig(rc);

  Tpcc bench(rig.db.get(), tc);
  if (!bench.Load(rig.io).ok()) abort();
  auto result = bench.Run();
  if (!result.ok()) abort();
  if (g_json != nullptr && g_json->enabled()) {
    BenchResult row(std::string(barriers ? "barrier_on" : "barrier_off") +
                    "/page=" + std::to_string(page_size / kKiB) + "KB");
    row.Param("write_barriers", barriers)
        .Param("page_size", static_cast<uint64_t>(page_size))
        .Throughput(result->tpmc, "tpmC")
        .Metrics(rig.db->metrics())
        .Device(*rig.data_dev);
    g_json->Add(std::move(row));
  }
  return result->tpmc;
}

void RunTable(const Tpcc::Config& tc, uint64_t pool_bytes) {
  printf("Table 4: TPC-C throughput (tpmC)\n");
  printf("  %-12s %10s %10s %10s\n", "", "16KB", "8KB", "4KB");
  const uint32_t sizes[] = {16 * kKiB, 8 * kKiB, 4 * kKiB};
  printf("  %-12s", "Barrier On");
  for (uint32_t ps : sizes) {
    printf(" %10.0f", RunConfig(true, ps, tc, pool_bytes));
    fflush(stdout);
  }
  printf("\n  %-12s", "Barrier Off");
  for (uint32_t ps : sizes) {
    printf(" %10.0f", RunConfig(false, ps, tc, pool_bytes));
    fflush(stdout);
  }
  printf("\n");
}

}  // namespace
}  // namespace durassd

int main(int argc, char** argv) {
  durassd::Tpcc::Config tc;
  tc.warehouses = 8;
  tc.items = 10000;
  tc.customers_per_district = 300;
  tc.clients = 64;
  tc.transactions = 30000;
  uint64_t pool = 3 * durassd::kMiB;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--quick") == 0) {
      quick = true;
      tc.warehouses = 4;
      tc.items = 5000;
      tc.transactions = 8000;
      pool = 2 * durassd::kMiB;
    }
  }
  durassd::BenchJson json("table4_tpcc",
                          durassd::BenchJson::PathFromArgs(argc, argv), quick);
  json.Config("warehouses", static_cast<uint64_t>(tc.warehouses))
      .Config("transactions", tc.transactions)
      .Config("pool_bytes", pool);
  durassd::g_json = &json;
  durassd::RunTable(tc, pool);
  return json.WriteFile() ? 0 : 1;
}
