// Ablation for the paper's Sec. 3.3 future-work proposal: instead of
// asking operators to mount nobarrier, DuraSSD could implement FLUSH CACHE
// as an ordering-only command (no drain) — unmodified hosts with barriers
// ON then get nobarrier-class performance. Compares LinkBench TPS in the
// default MySQL configuration across the three flush semantics.
#include <cstdio>
#include <cstring>
#include <memory>

#include "db/database.h"
#include "host/sim_file.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"
#include "workloads/linkbench.h"

namespace durassd {
namespace {

double RunConfig(bool barriers, SsdConfig::FlushMode mode, uint64_t nodes,
                 uint64_t requests) {
  SsdConfig dc = SsdConfig::DuraSsd();
  dc.flush_mode = mode;
  auto data_dev = std::make_unique<SsdDevice>(dc);
  auto log_dev = std::make_unique<SsdDevice>(dc);
  SimFileSystem::Options fso;
  fso.write_barriers = barriers;
  SimFileSystem data_fs(data_dev.get(), fso);
  SimFileSystem log_fs(log_dev.get(), fso);

  IoContext io;
  Database::Options dbo;
  dbo.pool_bytes = nodes / 14 * kKiB;
  dbo.double_write = true;  // MySQL default: host unmodified.
  auto db = Database::Open(io, &data_fs, &log_fs, dbo);
  if (!db.ok()) abort();

  LinkBench::Config lc;
  lc.num_nodes = nodes;
  lc.clients = 128;
  lc.requests = requests;
  LinkBench bench(db->get(), lc);
  if (!bench.Load(io).ok()) abort();
  return (*bench.Run()).tps;
}

void Run(uint64_t nodes, uint64_t requests) {
  printf("Ablation: FLUSH CACHE semantics (LinkBench, MySQL-default host)\n");
  printf("  %-44s %10s\n", "configuration", "TPS");
  printf("  %-44s %10.0f\n", "barriers ON, full flush (commodity)",
         RunConfig(true, SsdConfig::FlushMode::kFullFlush, nodes, requests));
  printf("  %-44s %10.0f\n",
         "barriers ON, ordered no-drain flush (Sec 3.3)",
         RunConfig(true, SsdConfig::FlushMode::kOrderedNoDrain, nodes,
                   requests));
  printf("  %-44s %10.0f\n", "barriers OFF (nobarrier deployment)",
         RunConfig(false, SsdConfig::FlushMode::kFullFlush, nodes,
                   requests));
}

}  // namespace
}  // namespace durassd

int main(int argc, char** argv) {
  uint64_t nodes = 100000;
  uint64_t requests = 40000;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--quick") == 0) {
      nodes = 40000;
      requests = 15000;
    }
  }
  durassd::Run(nodes, requests);
  return 0;
}
