// Ablation for the paper's Sec. 3.3 future-work proposal: instead of
// asking operators to mount nobarrier, DuraSSD could implement FLUSH CACHE
// as an ordering-only command (no drain) — unmodified hosts with barriers
// ON then get nobarrier-class performance. Compares LinkBench TPS in the
// default MySQL configuration across the three flush semantics.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "bench/bench_json.h"
#include "db/database.h"
#include "host/sim_file.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"
#include "workloads/linkbench.h"

namespace durassd {
namespace {

BenchJson* g_json = nullptr;

double RunConfig(const char* label, bool barriers, SsdConfig::FlushMode mode,
                 uint64_t nodes, uint64_t requests) {
  SsdConfig dc = SsdConfig::DuraSsd();
  dc.flush_mode = mode;
  auto data_dev = std::make_unique<SsdDevice>(dc);
  auto log_dev = std::make_unique<SsdDevice>(dc);
  SimFileSystem::Options fso;
  fso.write_barriers = barriers;
  SimFileSystem data_fs(data_dev.get(), fso);
  SimFileSystem log_fs(log_dev.get(), fso);

  IoContext io;
  Database::Options dbo;
  dbo.pool_bytes = nodes / 14 * kKiB;
  dbo.double_write = true;  // MySQL default: host unmodified.
  auto db = Database::Open(io, &data_fs, &log_fs, dbo);
  if (!db.ok()) abort();

  LinkBench::Config lc;
  lc.num_nodes = nodes;
  lc.clients = 128;
  lc.requests = requests;
  LinkBench bench(db->get(), lc);
  if (!bench.Load(io).ok()) abort();
  const double tps = (*bench.Run()).tps;
  if (g_json != nullptr && g_json->enabled()) {
    BenchResult row(label);
    row.Param("write_barriers", barriers)
        .Param("ordered_no_drain",
               mode == SsdConfig::FlushMode::kOrderedNoDrain)
        .Throughput(tps, "txn/s")
        .Metrics((*db)->metrics())
        .Device(*data_dev);
    g_json->Add(std::move(row));
  }
  return tps;
}

void Run(uint64_t nodes, uint64_t requests) {
  printf("Ablation: FLUSH CACHE semantics (LinkBench, MySQL-default host)\n");
  printf("  %-44s %10s\n", "configuration", "TPS");
  printf("  %-44s %10.0f\n", "barriers ON, full flush (commodity)",
         RunConfig("barrier_on_full_flush", true,
                   SsdConfig::FlushMode::kFullFlush, nodes, requests));
  printf("  %-44s %10.0f\n",
         "barriers ON, ordered no-drain flush (Sec 3.3)",
         RunConfig("barrier_on_ordered_no_drain", true,
                   SsdConfig::FlushMode::kOrderedNoDrain, nodes, requests));
  printf("  %-44s %10.0f\n", "barriers OFF (nobarrier deployment)",
         RunConfig("barrier_off", false, SsdConfig::FlushMode::kFullFlush,
                   nodes, requests));
}

}  // namespace
}  // namespace durassd

int main(int argc, char** argv) {
  uint64_t nodes = 100000;
  uint64_t requests = 40000;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--quick") == 0) {
      quick = true;
      nodes = 40000;
      requests = 15000;
    }
  }
  durassd::BenchJson json("ablation_flush_semantics",
                          durassd::BenchJson::PathFromArgs(argc, argv), quick);
  json.Config("nodes", nodes).Config("requests", requests);
  durassd::g_json = &json;
  durassd::Run(nodes, requests);
  return json.WriteFile() ? 0 : 1;
}
