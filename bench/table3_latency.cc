// Reproduces Table 3: distribution of LinkBench transaction latency
// (mean/P25/P50/P75/P99/max, in ms) for the ten operation types, comparing
// the MySQL default configuration (ON/ON, 16KB pages) against the best
// DuraSSD configuration (OFF/OFF, 4KB pages).
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_json.h"
#include "bench/db_bench_util.h"
#include "workloads/linkbench.h"

namespace durassd {
namespace {

BenchJson* g_json = nullptr;

void RunConfig(const char* title, const char* label, bool barriers, bool dwb,
               uint32_t page_size, uint64_t nodes, uint64_t requests) {
  DbRigConfig rc;
  rc.write_barriers = barriers;
  rc.double_write = dwb;
  rc.page_size = page_size;
  rc.pool_bytes = nodes / 14 * kKiB;
  DbRig rig = MakeDbRig(rc);

  LinkBench::Config lc;
  lc.num_nodes = nodes;
  lc.clients = 128;
  lc.requests = requests;
  LinkBench bench(rig.db.get(), lc);
  if (!bench.Load(rig.io).ok()) abort();
  auto result = bench.Run();
  if (!result.ok()) abort();

  printf("%s (TPS %.0f)\n", title, result->tps);
  printf("  %-14s %8s %8s %8s %8s %8s %8s\n", "op", "mean", "p25", "p50",
         "p75", "p99", "max");
  for (int op = 0; op < static_cast<int>(LinkOp::kNumOps); ++op) {
    const LinkOp o = static_cast<LinkOp>(op);
    auto it = result->latencies.find(o);
    if (it == result->latencies.end()) continue;
    printf("  %-14s %s\n", LinkOpName(o), it->second.SummaryMillis().c_str());
    if (g_json != nullptr && g_json->enabled()) {
      BenchResult row(std::string(label) + "/" + LinkOpName(o));
      row.Param("config", label)
          .Param("op", LinkOpName(o))
          .Param("write_barriers", barriers)
          .Param("double_write", dwb)
          .Param("page_size", static_cast<uint64_t>(page_size))
          .Throughput(result->tps, "txn/s")
          .LatencyNs(it->second);
      g_json->Add(std::move(row));
    }
  }
}

}  // namespace
}  // namespace durassd

int main(int argc, char** argv) {
  uint64_t nodes = 100000;
  uint64_t requests = 60000;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--quick") == 0) {
      quick = true;
      nodes = 40000;
      requests = 20000;
    }
  }
  durassd::BenchJson json("table3_latency",
                          durassd::BenchJson::PathFromArgs(argc, argv), quick);
  json.Config("nodes", nodes).Config("requests", requests);
  durassd::g_json = &json;
  printf("Table 3: LinkBench latency distribution (ms)\n");
  durassd::RunConfig(" ON/ON with 16KB pages (MySQL default)", "on_on_16k",
                     true, true, 16 * durassd::kKiB, nodes, requests);
  durassd::RunConfig(" OFF/OFF with 4KB pages (DuraSSD best)", "off_off_4k",
                     false, false, 4 * durassd::kKiB, nodes, requests);
  return json.WriteFile() ? 0 : 1;
}
