// google-benchmark microbenchmarks for the hot paths of the library itself
// (wall-clock cost of the simulator, not virtual-time results): device
// read/write dispatch, FTL programs, B+-tree operations, CRC, histogram.
#include <benchmark/benchmark.h>

#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "common/histogram.h"
#include "common/random.h"
#include "db/btree.h"
#include "db/buffer_pool.h"
#include "db/wal.h"
#include "host/sim_file.h"
#include "kv/kvstore.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {
namespace {

void BM_Crc32c4K(benchmark::State& state) {
  std::string data(4096, 'x');
  for (auto _ : state) {
    benchmark::DoNotOptimize(Crc32c(data.data(), data.size()));
  }
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_Crc32c4K);

void BM_HistogramRecord(benchmark::State& state) {
  Histogram h;
  Random rng(1);
  for (auto _ : state) {
    h.Record(static_cast<SimTime>(rng.Uniform(100 * kMillisecond)));
  }
}
BENCHMARK(BM_HistogramRecord);

void BM_ZipfianNext(benchmark::State& state) {
  Random rng(2);
  ZipfianGenerator zipf(1000000, 0.99);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.NextScrambled(rng));
  }
}
BENCHMARK(BM_ZipfianNext);

void BM_SsdCachedWrite(benchmark::State& state) {
  SsdConfig cfg = SsdConfig::DuraSsd();
  cfg.store_data = false;
  SsdDevice dev(cfg);
  const std::string data(4096, 'w');
  Random rng(3);
  SimTime t = 0;
  for (auto _ : state) {
    const auto r = dev.Write(t, rng.Uniform(dev.num_sectors()), data);
    t = r.done;
  }
}
BENCHMARK(BM_SsdCachedWrite);

void BM_SsdRead(benchmark::State& state) {
  SsdConfig cfg = SsdConfig::DuraSsd();
  cfg.store_data = false;
  SsdDevice dev(cfg);
  const std::string data(4096, 'r');
  SimTime t = 0;
  for (Lpn l = 0; l < 4096; ++l) t = dev.Write(t, l, data).done;
  Random rng(4);
  for (auto _ : state) {
    const auto r = dev.Read(t, rng.Uniform(4096), 1, nullptr);
    t = r.done;
  }
}
BENCHMARK(BM_SsdRead);

class BTreeFixture : public benchmark::Fixture {
 public:
  class Bump : public PageAllocator {
   public:
    StatusOr<PageId> AllocatePage(IoContext&) override { return next_++; }
    PageId next_ = 1;
  };

  void SetUp(const benchmark::State&) override {
    SsdConfig cfg = SsdConfig::DuraSsd();
    cfg.store_data = true;
    dev = std::make_unique<SsdDevice>(cfg);
    fs = std::make_unique<SimFileSystem>(dev.get(), SimFileSystem::Options{});
    wal = std::make_unique<Wal>(fs->Open("wal"), Wal::Options{});
    pool = std::make_unique<BufferPool>(
        fs->Open("data"), wal.get(), nullptr,
        BufferPool::Options{64 * kMiB, 4096, false, 0});
    MutationCtx m{0, 0, nullptr};
    auto root = BTree::Create(io, pool.get(), &alloc, m);
    tree = std::make_unique<BTree>(pool.get(), &alloc, *root);
    Random rng(5);
    for (int i = 0; i < 100000; ++i) {
      tree->Put(io, m, "key" + std::to_string(i), "value-payload-000");
    }
  }
  void TearDown(const benchmark::State&) override {
    tree.reset();
    pool.reset();
    wal.reset();
    fs.reset();
    dev.reset();
  }

  IoContext io;
  Bump alloc;
  std::unique_ptr<SsdDevice> dev;
  std::unique_ptr<SimFileSystem> fs;
  std::unique_ptr<Wal> wal;
  std::unique_ptr<BufferPool> pool;
  std::unique_ptr<BTree> tree;
};

BENCHMARK_F(BTreeFixture, Get)(benchmark::State& state) {
  Random rng(6);
  std::string v;
  for (auto _ : state) {
    tree->Get(io, "key" + std::to_string(rng.Uniform(100000)), &v);
  }
}

BENCHMARK_F(BTreeFixture, Put)(benchmark::State& state) {
  Random rng(7);
  MutationCtx m{0, 0, nullptr};
  for (auto _ : state) {
    tree->Put(io, m, "key" + std::to_string(rng.Uniform(100000)),
              "value-payload-001");
  }
}

void BM_KvStorePut(benchmark::State& state) {
  SsdConfig cfg = SsdConfig::DuraSsd();
  cfg.store_data = true;
  SsdDevice dev(cfg);
  SimFileSystem fs(&dev, SimFileSystem::Options{});
  IoContext io;
  KvStore::Options ko;
  ko.batch_size = 100;
  auto store = KvStore::Open(io, &fs, "b.couch", ko);
  const std::string value(1024, 'v');
  Random rng(8);
  for (auto _ : state) {
    (*store)->Put(io, "user" + std::to_string(rng.Uniform(100000)), value);
  }
}
BENCHMARK(BM_KvStorePut);

}  // namespace
}  // namespace durassd

// Custom main instead of BENCHMARK_MAIN(): translate the repo-wide bench
// flags (--json <path>, --quick) into google-benchmark's own flags so
// run_benches.sh can drive every binary with the same command line.
// google-benchmark already emits machine-readable JSON; no BenchJson here.
int main(int argc, char** argv) {
  std::vector<char*> args;
  std::string out_flag;
  std::string fmt_flag = "--benchmark_out_format=json";
  args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      out_flag = std::string("--benchmark_out=") + argv[i + 1];
      ++i;
    } else if (strncmp(argv[i], "--json=", 7) == 0) {
      out_flag = std::string("--benchmark_out=") + (argv[i] + 7);
    } else if (strcmp(argv[i], "--quick") == 0) {
      // Wall-clock microbenchmarks are already short; nothing to trim.
    } else {
      args.push_back(argv[i]);
    }
  }
  if (!out_flag.empty()) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int bench_argc = static_cast<int>(args.size());
  benchmark::Initialize(&bench_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, args.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
