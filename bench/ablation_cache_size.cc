// Ablation (Sec. 2.3, "magnified write-back effect"): random-write IOPS as
// the device write buffer shrinks/grows. The paper argues a write buffer of
// ~0.1% of storage absorbs bursts; this sweep shows where the knee sits.
//
// The workload hammers a hot 4 MiB working set through an open host
// interface, so the media (16 planes x tPROG) is the bottleneck and the
// write buffer is what stands between the host and it. With the lazy
// destage scheduler, sectors rewritten while still pending are absorbed in
// the buffer and never cost a NAND program: the larger the buffer, the more
// of the hot set stays pending and the further sustained IOPS climbs above
// the raw media ceiling. The first row pins the legacy eager path
// (destage_batch_pages=1) at the largest buffer as the A/B baseline — it
// stays at the media ceiling no matter how big the buffer is.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_json.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"
#include "workloads/fiosim.h"

namespace durassd {
namespace {

SsdConfig SweepConfig(uint32_t sectors, bool lazy) {
  SsdConfig cfg = SsdConfig::DuraSsd();
  // Media-bound geometry (16 planes): bursts outrun the destage rate, so
  // the buffer size decides how much of a burst is absorbed.
  cfg.geometry.channels = 2;
  cfg.geometry.packages_per_channel = 2;
  cfg.geometry.chips_per_package = 2;
  cfg.geometry.planes_per_chip = 2;
  cfg.geometry.blocks_per_plane = 512;
  // Open up the host interface so the media, not the firmware pipeline or
  // the bus, limits the 128-thread burst (same idiom as
  // ablation_parallelism, plus an NVMe-class link: a SATA bus serializes
  // 4K writes at ~10us each and would cap the sweep near 100 kiops).
  cfg.fw_parallelism = 32;
  cfg.fw_write_base = 10 * kMicrosecond;
  cfg.bus_write_bytes_per_ns = 3.2;  // ~PCIe Gen3 x4.
  cfg.bus_cmd_overhead = 1 * kMicrosecond;
  cfg.write_buffer_sectors = sectors;
  cfg.cache_capacity_sectors = sectors * 2;
  if (lazy) {
    // Drain on frame pressure / idle / flush only: the buffer itself is the
    // destage batch, so pending occupancy (and with it the overwrite
    // absorption rate) scales with the buffer size under sweep.
    cfg.destage_batch_pages = sectors;
  } else {
    cfg.destage_batch_pages = 1;  // Legacy eager destage (A/B baseline).
  }
  cfg.store_data = false;
  return cfg;
}

void RunRow(const char* label, uint32_t sectors, bool lazy, uint64_t ops,
            BenchJson* json) {
  SsdDevice dev(SweepConfig(sectors, lazy));
  FioJob job;
  job.threads = 128;
  job.fsync_every = 0;
  job.ops = ops;  // A finite burst; larger buffers absorb more of it.
  job.write_barriers = false;
  job.working_set_bytes = 4 * kMiB;  // Hot set: 1024 4K sectors.
  const FioResult r = RunFio(&dev, job);
  const SsdDevice::Stats& st = dev.stats();
  printf("  %-22s %10.0f %12.0f %12.0f %10llu %10llu %10llu\n", label,
         r.iops, static_cast<double>(r.latency.Percentile(50)) / 1e3,
         static_cast<double>(r.latency.Percentile(99)) / 1e3,
         static_cast<unsigned long long>(st.destage_absorbed),
         static_cast<unsigned long long>(st.write_stalls),
         static_cast<unsigned long long>(
             dev.flash().stats().multi_plane_programs));
  if (json->enabled()) {
    BenchResult row{std::string(label)};
    row.Param("write_buffer_sectors", static_cast<uint64_t>(sectors))
        .Param("lazy_destage", lazy)
        .Throughput(r.iops, "iops")
        .LatencyNs(r.latency)
        .Device(dev);
    json->Add(std::move(row));
  }
}

void RunSweep(uint64_t ops, BenchJson* json) {
  printf("Ablation: device write-buffer size vs burst absorption\n");
  printf("  %-22s %10s %12s %12s %10s %10s %10s\n", "buffer", "iops",
         "lat p50(us)", "lat p99(us)", "absorbed", "stalls", "mp_progs");
  RunRow("eager_2048", 2048, /*lazy=*/false, ops, json);
  for (uint32_t sectors : {64u, 256u, 1024u, 2048u, 4096u}) {
    const std::string label =
        "write_buffer_sectors=" + std::to_string(sectors);
    RunRow(label.c_str(), sectors, /*lazy=*/true, ops, json);
  }
}

}  // namespace
}  // namespace durassd

int main(int argc, char** argv) {
  uint64_t ops = 20000;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--quick") == 0) {
      quick = true;
      ops = 5000;
    }
  }
  durassd::BenchJson json("ablation_cache_size",
                          durassd::BenchJson::PathFromArgs(argc, argv), quick);
  json.Config("ops", ops);
  durassd::RunSweep(ops, &json);
  return json.WriteFile() ? 0 : 1;
}
