// Ablation (Sec. 2.3, "magnified write-back effect"): random-write IOPS as
// the device write buffer shrinks/grows. The paper argues a write buffer of
// ~0.1% of storage absorbs bursts; this sweep shows where the knee sits.
#include <cstdio>
#include <cstring>

#include "bench/bench_json.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"
#include "workloads/fiosim.h"

namespace durassd {
namespace {

void RunSweep(uint64_t ops, BenchJson* json) {
  printf("Ablation: device write-buffer size vs burst absorption\n");
  printf("  %-14s %10s %12s %12s %12s\n", "buffer", "iops",
         "lat p50(us)", "lat p99(us)", "lat max(ms)");
  for (uint32_t sectors : {64u, 256u, 1024u, 4096u, 16384u}) {
    SsdConfig cfg = SsdConfig::DuraSsd();
    // Media-bound geometry (16 planes): bursts outrun the destage rate, so
    // the buffer size decides how much of a burst is absorbed.
    cfg.geometry.channels = 2;
    cfg.geometry.packages_per_channel = 2;
    cfg.geometry.chips_per_package = 2;
    cfg.geometry.planes_per_chip = 2;
    cfg.geometry.blocks_per_plane = 512;
    cfg.write_buffer_sectors = sectors;
    cfg.cache_capacity_sectors = sectors * 2;
    cfg.store_data = false;

    SsdDevice dev(cfg);
    FioJob job;
    job.threads = 128;
    job.fsync_every = 0;
    job.ops = ops;  // A finite burst; larger buffers absorb more of it.
    job.write_barriers = false;
    const FioResult r = RunFio(&dev, job);
    printf("  %6u KiB     %10.0f %12.0f %12.0f %12.2f\n", sectors * 4,
           r.iops, static_cast<double>(r.latency.Percentile(50)) / 1e3,
           static_cast<double>(r.latency.Percentile(99)) / 1e3,
           static_cast<double>(r.latency.max()) / 1e6);
    if (json->enabled()) {
      BenchResult row("write_buffer_sectors=" + std::to_string(sectors));
      row.Param("write_buffer_sectors", static_cast<uint64_t>(sectors))
          .Throughput(r.iops, "iops")
          .LatencyNs(r.latency)
          .Device(dev);
      json->Add(std::move(row));
    }
  }
}

}  // namespace
}  // namespace durassd

int main(int argc, char** argv) {
  uint64_t ops = 20000;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--quick") == 0) {
      quick = true;
      ops = 5000;
    }
  }
  durassd::BenchJson json("ablation_cache_size",
                          durassd::BenchJson::PathFromArgs(argc, argv), quick);
  json.Config("ops", ops);
  durassd::RunSweep(ops, &json);
  return json.WriteFile() ? 0 : 1;
}
