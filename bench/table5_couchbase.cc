// Reproduces Table 5: Couchbase-style (KvStore) throughput for YCSB,
// batch-size {1, 2, 5, 10, 100} x write barriers {on, off} x update
// fraction {100%, 50%}, single benchmark thread, 1KB documents.
#include <cstdio>
#include <cstring>
#include <memory>

#include "host/sim_file.h"
#include "kv/kvstore.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"
#include "workloads/ycsb.h"

namespace durassd {
namespace {

double RunConfig(bool barriers, uint32_t batch, double update_fraction,
                 uint64_t records, uint64_t operations) {
  SsdConfig dc = SsdConfig::DuraSsd();
  dc.store_data = true;
  SsdDevice device(dc);
  SimFileSystem::Options fso;
  fso.write_barriers = barriers;
  SimFileSystem fs(&device, fso);

  IoContext io;
  KvStore::Options ko;
  ko.batch_size = batch;
  auto store = KvStore::Open(io, &fs, "bucket.couch", ko);
  if (!store.ok()) abort();

  Ycsb::Config yc;
  yc.records = records;
  yc.operations = operations;
  yc.update_fraction = update_fraction;
  yc.clients = 1;  // Single thread, like the paper.
  Ycsb bench(store->get(), yc);
  if (!bench.Load(io).ok()) abort();
  auto result = bench.Run();
  if (!result.ok()) abort();
  return result->ops_per_sec;
}

void RunTable(uint64_t records, uint64_t operations) {
  const uint32_t kBatches[] = {1, 2, 5, 10, 100};
  printf("Table 5: Couchbase-style YCSB throughput (ops/s)\n");
  for (bool barriers : {true, false}) {
    printf(" (%s) with write barriers %s\n", barriers ? "a" : "b",
           barriers ? "on" : "off");
    printf("  %-12s", "batch-size:");
    for (uint32_t b : kBatches) printf(" %8u", b);
    printf("\n");
    for (double update : {1.0, 0.5}) {
      printf("  Update %3.0f%%", update * 100);
      for (uint32_t b : kBatches) {
        printf(" %8.0f", RunConfig(barriers, b, update, records, operations));
        fflush(stdout);
      }
      printf("\n");
    }
  }
}

}  // namespace
}  // namespace durassd

int main(int argc, char** argv) {
  uint64_t records = 50000;
  uint64_t operations = 50000;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--quick") == 0) {
      records = 20000;
      operations = 15000;
    }
  }
  durassd::RunTable(records, operations);
  return 0;
}
