// Reproduces Table 5: Couchbase-style (KvStore) throughput for YCSB,
// batch-size {1, 2, 5, 10, 100} x write barriers {on, off} x update
// fraction {100%, 50%}, single benchmark thread, 1KB documents.
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "bench/bench_json.h"
#include "host/sim_file.h"
#include "kv/kvstore.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"
#include "workloads/ycsb.h"

namespace durassd {
namespace {

BenchJson* g_json = nullptr;

double RunConfig(bool barriers, uint32_t batch, double update_fraction,
                 uint64_t records, uint64_t operations) {
  SsdConfig dc = SsdConfig::DuraSsd();
  dc.store_data = true;
  SsdDevice device(dc);
  SimFileSystem::Options fso;
  fso.write_barriers = barriers;
  SimFileSystem fs(&device, fso);

  IoContext io;
  KvStore::Options ko;
  ko.batch_size = batch;
  auto store = KvStore::Open(io, &fs, "bucket.couch", ko);
  if (!store.ok()) abort();

  Ycsb::Config yc;
  yc.records = records;
  yc.operations = operations;
  yc.update_fraction = update_fraction;
  yc.clients = 1;  // Single thread, like the paper.
  Ycsb bench(store->get(), yc);
  if (!bench.Load(io).ok()) abort();
  auto result = bench.Run();
  if (!result.ok()) abort();
  if (g_json != nullptr && g_json->enabled()) {
    BenchResult row(std::string(barriers ? "barrier_on" : "barrier_off") +
                    "/update=" + std::to_string(update_fraction) +
                    "/batch=" + std::to_string(batch));
    row.Param("write_barriers", barriers)
        .Param("batch_size", static_cast<uint64_t>(batch))
        .Param("update_fraction", update_fraction)
        .Throughput(result->ops_per_sec, "ops/s")
        .LatencyNs(result->update_latency)
        .Metrics((*store)->metrics())
        .Device(device);
    g_json->Add(std::move(row));
  }
  return result->ops_per_sec;
}

void RunTable(uint64_t records, uint64_t operations) {
  const uint32_t kBatches[] = {1, 2, 5, 10, 100};
  printf("Table 5: Couchbase-style YCSB throughput (ops/s)\n");
  for (bool barriers : {true, false}) {
    printf(" (%s) with write barriers %s\n", barriers ? "a" : "b",
           barriers ? "on" : "off");
    printf("  %-12s", "batch-size:");
    for (uint32_t b : kBatches) printf(" %8u", b);
    printf("\n");
    for (double update : {1.0, 0.5}) {
      printf("  Update %3.0f%%", update * 100);
      for (uint32_t b : kBatches) {
        printf(" %8.0f", RunConfig(barriers, b, update, records, operations));
        fflush(stdout);
      }
      printf("\n");
    }
  }
}

}  // namespace
}  // namespace durassd

int main(int argc, char** argv) {
  uint64_t records = 50000;
  uint64_t operations = 50000;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--quick") == 0) {
      quick = true;
      records = 20000;
      operations = 15000;
    }
  }
  durassd::BenchJson json("table5_couchbase",
                          durassd::BenchJson::PathFromArgs(argc, argv), quick);
  json.Config("records", records).Config("operations", operations);
  durassd::g_json = &json;
  durassd::RunTable(records, operations);
  return json.WriteFile() ? 0 : 1;
}
