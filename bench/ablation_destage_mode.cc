// Destage-placement ablation (ROADMAP item 2): in-place lazy destage vs
// log-structured segments, on a commit-heavy small-write workload with a
// read mix. In-place mode is forced to program partial pages at every FLUSH
// CACHE; the log mode leaves acknowledged sectors coalescing in the durable
// cache and programs only full sequential segments, so it wins on write
// amplification and block lifetime while serving the same reads from cache.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "bench/bench_json.h"
#include "common/random.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {
namespace {

BenchJson* g_json = nullptr;

struct ModeResult {
  double write_amp;
  double hit_ratio;
  double block_lifetime_pages;  ///< NAND programs per erase (endurance).
  double kiops;
  uint64_t erases;
  uint64_t log_segments;
};

ModeResult RunMode(const char* label, SsdConfig::DestageMode mode,
                   uint64_t ops, uint64_t keyspace, uint32_t flush_every) {
  SsdConfig cfg = SsdConfig::DuraSsd();
  cfg.store_data = false;  // Timing-only: volume without byte storage.
  cfg.destage_mode = mode;
  SsdDevice dev(cfg);
  if (keyspace > dev.num_sectors()) keyspace = dev.num_sectors();

  Random rng(42);
  const std::string sector(cfg.sector_size, 'd');
  SimTime t = 0;
  uint64_t writes = 0;
  for (uint64_t i = 0; i < ops; ++i) {
    if (i % 5 == 4) {
      // Read mix: mostly recently written keys, so the write cache can hit.
      const Lpn lpn = rng.Uniform(keyspace);
      t = dev.Read(t, lpn, 1, nullptr).done;
      continue;
    }
    const Lpn lpn = rng.Uniform(keyspace);
    t = dev.Write(t, lpn, sector).done;
    if (++writes % flush_every == 0) t = dev.Flush(t).done;  // Commit cadence.
  }
  // Clean shutdown drains the log tail too, so both modes account for every
  // host byte reaching NAND.
  (void)dev.Shutdown(t);

  const SsdDevice::Stats& s = dev.stats();
  const uint64_t erases = dev.flash().stats().erases;
  const uint64_t programs =
      dev.flash().stats().programs + 2 * dev.flash().stats().multi_plane_programs;
  ModeResult r;
  r.write_amp = dev.WriteAmplification();
  const uint64_t looked_up = s.cache_read_hits + s.cache_read_misses;
  r.hit_ratio = looked_up > 0
                    ? static_cast<double>(s.cache_read_hits) / looked_up
                    : 0.0;
  r.block_lifetime_pages =
      static_cast<double>(programs) / static_cast<double>(erases > 0 ? erases : 1);
  r.kiops = t > 0 ? static_cast<double>(ops) / (static_cast<double>(t) / kSecond) / 1e3
                  : 0.0;
  r.erases = erases;
  r.log_segments = s.log_segments;

  if (g_json != nullptr && g_json->enabled()) {
    BenchResult row(label);
    row.Param("destage_mode",
              mode == SsdConfig::DestageMode::kLogStructured ? "log_structured"
                                                             : "in_place")
        .Param("flush_every", static_cast<uint64_t>(flush_every))
        .Throughput(r.kiops, "kIOPS")
        .Value("write_amplification", r.write_amp)
        .Value("cache_hit_ratio", r.hit_ratio)
        .Value("block_lifetime_pages", r.block_lifetime_pages)
        .Value("nand_erases", static_cast<double>(erases))
        .Value("log_segments", static_cast<double>(r.log_segments))
        .Device(dev);
    g_json->Add(std::move(row));
  }
  return r;
}

void PrintRow(const char* mode, uint32_t flush_every, const ModeResult& r) {
  printf("  %-16s %12u %8.3f %8.1f %10.0f %10llu %10.1f\n", mode, flush_every,
         r.write_amp, 100.0 * r.hit_ratio, r.block_lifetime_pages,
         static_cast<unsigned long long>(r.log_segments), r.kiops);
}

void RunComparison(uint64_t ops, uint64_t keyspace) {
  // fsync-per-commit (1) is the paper's core workload; 3 leaves odd sector
  // counts in every in-place drain; 16 is a lazy group-commit cadence.
  const uint32_t kCadences[] = {1, 3, 16};
  printf("Ablation: destage placement, %llu ops (1 read per 4 writes)\n",
         static_cast<unsigned long long>(ops));
  printf("  %-16s %12s %8s %8s %10s %10s %10s\n", "mode", "flush_every", "WA",
         "hit%", "pg/erase", "segments", "kIOPS");
  for (uint32_t flush_every : kCadences) {
    char label[64];
    snprintf(label, sizeof(label), "in_place_f%u", flush_every);
    const ModeResult in_place =
        RunMode(label, SsdConfig::DestageMode::kInPlace, ops, keyspace,
                flush_every);
    PrintRow("in_place", flush_every, in_place);
    snprintf(label, sizeof(label), "log_structured_f%u", flush_every);
    const ModeResult log =
        RunMode(label, SsdConfig::DestageMode::kLogStructured, ops, keyspace,
                flush_every);
    PrintRow("log_structured", flush_every, log);
    if (in_place.write_amp > 0) {
      printf("  NAND write reduction @%u: %.0f%%\n", flush_every,
             100.0 * (1.0 - log.write_amp / in_place.write_amp));
    }
  }
}

}  // namespace
}  // namespace durassd

int main(int argc, char** argv) {
  uint64_t ops = 200000;
  uint64_t keyspace = 1 << 16;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--quick") == 0) {
      quick = true;
      ops = 40000;
    }
  }
  durassd::BenchJson json("ablation_destage_mode",
                          durassd::BenchJson::PathFromArgs(argc, argv), quick);
  json.Config("ops", ops).Config("keyspace", keyspace);
  durassd::g_json = &json;
  durassd::RunComparison(ops, keyspace);
  return json.WriteFile() ? 0 : 1;
}
