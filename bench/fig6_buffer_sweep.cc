// Reproduces Figure 6: LinkBench buffer miss ratio (a) and TPS (b) as the
// buffer pool grows, per page size, under the OFF/OFF configuration.
// The paper sweeps 2..10 GB against a 100GB database; this harness sweeps
// the same pool:DB fractions (2%..10%) at simulator scale.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "bench/db_bench_util.h"
#include "workloads/linkbench.h"

namespace durassd {
namespace {

constexpr uint32_t kPageSizes[] = {16 * kKiB, 8 * kKiB, 4 * kKiB};

struct Point {
  double miss_pct;
  double tps;
};

BenchJson* g_json = nullptr;

Point RunConfig(uint32_t page_size, uint64_t pool_bytes, uint64_t nodes,
                uint64_t requests) {
  DbRigConfig rc;
  rc.write_barriers = false;
  rc.double_write = false;
  rc.page_size = page_size;
  rc.pool_bytes = pool_bytes;
  DbRig rig = MakeDbRig(rc);

  LinkBench::Config lc;
  lc.num_nodes = nodes;
  lc.clients = 128;
  lc.requests = requests;
  LinkBench bench(rig.db.get(), lc);
  if (!bench.Load(rig.io).ok()) abort();
  auto result = bench.Run();
  if (!result.ok()) abort();
  if (g_json != nullptr && g_json->enabled()) {
    BenchResult row("page=" + std::to_string(page_size / kKiB) +
                    "KB/pool_bytes=" + std::to_string(pool_bytes));
    row.Param("page_size", static_cast<uint64_t>(page_size))
        .Param("pool_bytes", pool_bytes)
        .Throughput(result->tps, "txn/s")
        .Value("buffer_miss_pct", 100.0 * result->buffer_miss_ratio)
        .Metrics(rig.db->metrics());
    g_json->Add(std::move(row));
  }
  return {100.0 * result->buffer_miss_ratio, result->tps};
}

void RunFigure(uint64_t nodes, uint64_t requests) {
  // Pool sweep: 2%..10% of the approximate on-disk size, mirroring the
  // paper's 2..10 GB against 100 GB.
  const uint64_t db_bytes = nodes * 700;  // ~700B/node incl. links+overhead.
  std::vector<uint64_t> pools;
  std::vector<int> pct{2, 4, 6, 8, 10};
  for (int p : pct) pools.push_back(db_bytes * p / 100);

  printf("Figure 6a: buffer miss ratio (%%), OFF/OFF\n");
  printf("  %-10s", "pool");
  for (int p : pct) printf(" %7d%%", p);
  printf("\n");
  std::vector<std::vector<Point>> grid(3);
  for (size_t s = 0; s < 3; ++s) {
    for (uint64_t pool : pools) {
      grid[s].push_back(RunConfig(kPageSizes[s], pool, nodes, requests));
    }
  }
  const char* labels[] = {"16KB", "8KB", "4KB"};
  for (size_t s = 0; s < 3; ++s) {
    printf("  %-10s", labels[s]);
    for (const Point& pt : grid[s]) printf(" %8.2f", pt.miss_pct);
    printf("\n");
  }
  printf("Figure 6b: TPS, OFF/OFF\n");
  for (size_t s = 0; s < 3; ++s) {
    printf("  %-10s", labels[s]);
    for (const Point& pt : grid[s]) printf(" %8.0f", pt.tps);
    printf("\n");
  }
}

}  // namespace
}  // namespace durassd

int main(int argc, char** argv) {
  uint64_t nodes = 120000;
  uint64_t requests = 40000;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--quick") == 0) {
      quick = true;
      nodes = 50000;
      requests = 15000;
    }
  }
  durassd::BenchJson json("fig6_buffer_sweep",
                          durassd::BenchJson::PathFromArgs(argc, argv), quick);
  json.Config("nodes", nodes).Config("requests", requests);
  durassd::g_json = &json;
  durassd::RunFigure(nodes, requests);
  return json.WriteFile() ? 0 : 1;
}
