// Ablation: mirrored two-device array — what whole-device failover costs
// the host, and what an online rebuild costs the foreground workload.
//
// Three measurements:
//   - Failover read latency: 4KB random reads against a healthy mirror,
//     then the read primary is killed mid-run. The first read after the
//     kill pays the discovery + redirect penalty; steady-state reads after
//     it run from the survivor. Reported: healthy p99, the discovery
//     read's latency, and the post-failover p99 (`failover_read_p99_us`,
//     regression-guarded).
//   - Rebuild interference: foreground 4KB random writes while the
//     rate-limited rebuild copies onto a hot spare, swept over the rebuild
//     pacing interval. Reported per interval: foreground IOPS, rebuild
//     copy rate, and `rebuild_foreground_floor` = foreground IOPS during
//     rebuild / foreground IOPS with no rebuild running (higher is
//     better, regression-guarded at the gentlest pacing).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "array/array_device.h"
#include "bench/bench_json.h"
#include "common/histogram.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {
namespace {

constexpr uint32_t kSectorBytes = 4 * kKiB;

SsdConfig MemberConfig() {
  SsdConfig cfg = SsdConfig::DuraSsd();
  cfg.store_data = false;  // Timing-only: keeps big sweeps cheap.
  return cfg;
}

uint64_t Rng(uint64_t* state) {
  *state ^= *state << 13;
  *state ^= *state >> 7;
  *state ^= *state << 17;
  return *state;
}

struct FailoverResult {
  Histogram healthy;
  Histogram failed_over;
  SimTime discovery_latency = 0;
};

FailoverResult RunFailoverReads(uint64_t ops) {
  ArrayConfig ac;
  auto arr = MakeMirroredArray(MemberConfig(), 2, ac);
  const uint64_t span = 64 * kMiB / kSectorBytes;
  uint64_t rng = 42;
  const std::string sector(kSectorBytes, 'w');
  SimTime t = 0;
  // Seed the working set so reads hit mapped sectors on both replicas.
  for (uint64_t i = 0; i < span; i += 8) {
    t = arr->Write(t, i, sector).done;
  }

  FailoverResult res;
  std::string out;
  for (uint64_t i = 0; i < ops; ++i) {
    const Lpn lpn = Rng(&rng) % span;
    const auto r = arr->Read(t, lpn, 1, &out);
    if (!r.status.ok()) break;
    res.healthy.Record(r.done - t);
    t = r.done;
  }

  // Kill the read primary; the very next read discovers the death, retries
  // on the survivor, and every read after that is a plain redirect.
  arr->fault_injector().KillMemberAt(0, t + 1);
  {
    const Lpn lpn = Rng(&rng) % span;
    const auto r = arr->Read(t + 2, lpn, 1, &out);
    if (r.status.ok()) res.discovery_latency = r.done - (t + 2);
    t = r.done;
  }
  for (uint64_t i = 0; i < ops; ++i) {
    const Lpn lpn = Rng(&rng) % span;
    const auto r = arr->Read(t, lpn, 1, &out);
    if (!r.status.ok()) break;
    res.failed_over.Record(r.done - t);
    t = r.done;
  }
  return res;
}

struct RebuildResult {
  double foreground_iops = 0;
  double rebuild_mb_per_sec = 0;
  uint64_t copied_sectors = 0;
};

/// Foreground 4KB random writes for `ops` commands on a degraded mirror;
/// when `interval_ns` is nonzero a rebuild onto a hot spare runs
/// concurrently (pumped by the foreground commands themselves).
RebuildResult RunRebuildWindow(uint64_t ops, SimTime interval_ns) {
  ArrayConfig ac;
  ac.rebuild_batch_sectors = 64;
  ac.rebuild_interval_ns = interval_ns == 0 ? kMillisecond : interval_ns;
  auto arr = MakeMirroredArray(MemberConfig(), 2, ac);
  const uint64_t span = 64 * kMiB / kSectorBytes;
  uint64_t rng = 7;
  const std::string sector(kSectorBytes, 'w');

  // Degrade: kill member 0 (tripped by one write), then optionally start
  // the rebuild onto a fresh spare.
  arr->fault_injector().KillMemberAt(0, 1);
  SimTime t = arr->Write(2, 0, sector).done;
  if (interval_ns != 0) {
    const Status s = arr->StartRebuild(t, 0);
    if (!s.ok()) {
      std::fprintf(stderr, "StartRebuild: %s\n", s.ToString().c_str());
      return {};
    }
  }

  const SimTime start = t;
  const uint64_t copied0 = arr->stats().rebuild_copied_sectors;
  for (uint64_t i = 0; i < ops; ++i) {
    const Lpn lpn = Rng(&rng) % span;
    const auto w = arr->Write(t, lpn, sector);
    if (!w.status.ok()) break;
    t = w.done;
  }
  const SimTime window = t - start;
  RebuildResult res;
  res.copied_sectors = arr->stats().rebuild_copied_sectors - copied0;
  if (window > 0) {
    res.foreground_iops =
        static_cast<double>(ops) * kSecond / static_cast<double>(window);
    res.rebuild_mb_per_sec = static_cast<double>(res.copied_sectors) *
                             kSectorBytes / kMiB * kSecond /
                             static_cast<double>(window);
  }
  return res;
}

double Us(SimTime ns) { return static_cast<double>(ns) / 1000.0; }

void RunFailoverBench(uint64_t ops, BenchJson* json) {
  printf("Mirrored-pair failover: 4KB random read latency\n");
  const FailoverResult r = RunFailoverReads(ops);
  const double healthy_p99 = Us(r.healthy.Percentile(0.99));
  const double failover_p99 = Us(r.failed_over.Percentile(0.99));
  printf("  %-22s %10.1f us\n", "healthy p99", healthy_p99);
  printf("  %-22s %10.1f us\n", "discovery read", Us(r.discovery_latency));
  printf("  %-22s %10.1f us\n", "post-failover p99", failover_p99);
  if (json->enabled()) {
    BenchResult row("mirror2/randread_failover");
    row.Param("mirrors", static_cast<uint64_t>(2))
        .Param("ops", ops)
        .LatencyNs(r.failed_over)
        .Value("healthy_read_p99_us", healthy_p99)
        .Value("failover_discovery_us", Us(r.discovery_latency))
        .Value("failover_read_p99_us", failover_p99);
    json->Add(std::move(row));
  }
}

void RunRebuildBench(uint64_t ops, BenchJson* json) {
  printf("\nOnline rebuild interference: 4KB random write IOPS while the\n"
         "spare copies, vs the rebuild pacing interval\n");
  const RebuildResult base = RunRebuildWindow(ops, 0);
  printf("  %-14s %12.0f IOPS (no rebuild)\n", "degraded", base.foreground_iops);
  printf("  %-14s %12s %14s %10s\n", "interval", "fg IOPS", "rebuild MB/s",
         "floor");
  constexpr SimTime kIntervals[] = {50 * kMicrosecond, 200 * kMicrosecond,
                                    1 * kMillisecond};
  for (const SimTime interval : kIntervals) {
    const RebuildResult r = RunRebuildWindow(ops, interval);
    const double floor = base.foreground_iops > 0
                             ? r.foreground_iops / base.foreground_iops
                             : 0;
    printf("  %10lld us %12.0f %14.1f %10.3f\n",
           static_cast<long long>(interval / 1000), r.foreground_iops,
           r.rebuild_mb_per_sec, floor);
    if (json->enabled()) {
      BenchResult row("mirror2/rebuild_interval=" +
                      std::to_string(interval / kMicrosecond) + "us");
      row.Param("rebuild_interval_us",
                static_cast<uint64_t>(interval / kMicrosecond))
          .Param("ops", ops)
          .Throughput(r.foreground_iops, "iops")
          .Value("rebuild_mb_per_sec", r.rebuild_mb_per_sec)
          .Value("rebuild_copied_sectors", r.copied_sectors);
      // Guard the floor only at the gentlest pacing: that is the knee the
      // scheduler promises (aggressive pacing legitimately trades
      // foreground throughput for copy rate).
      if (interval == 1 * kMillisecond) {
        row.Value("rebuild_foreground_floor", floor);
      }
      json->Add(std::move(row));
    }
  }
}

}  // namespace
}  // namespace durassd

int main(int argc, char** argv) {
  uint64_t read_ops = 20000;
  uint64_t write_ops = 8000;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--quick") == 0) {
      quick = true;
      read_ops = 4000;
      write_ops = 2000;
    }
  }
  durassd::BenchJson json("ablation_array_failover",
                          durassd::BenchJson::PathFromArgs(argc, argv), quick);
  json.Config("read_ops", read_ops);
  json.Config("write_ops", write_ops);
  durassd::RunFailoverBench(read_ops, &json);
  durassd::RunRebuildBench(write_ops, &json);
  return json.WriteFile() ? 0 : 1;
}
