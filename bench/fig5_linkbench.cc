// Reproduces Figure 5: LinkBench transaction throughput under the four
// write-barrier / double-write-buffer configurations {ON/ON, ON/OFF,
// OFF/ON, OFF/OFF} x page sizes {16KB, 8KB, 4KB}, 128 clients.
//
// Scale note: the paper runs a 100GB database against a 10GB buffer pool on
// real hardware; this harness keeps the same DB:pool ratio (~10:1) at
// simulator scale. Absolute TPS differs; the configuration ordering and
// gain factors are the reproduction target.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_json.h"
#include "bench/db_bench_util.h"
#include "workloads/linkbench.h"

namespace durassd {
namespace {

struct BarrierDwb {
  bool barriers;
  bool dwb;
  const char* label;
};
constexpr BarrierDwb kConfigs[] = {
    {true, true, "ON / ON"},
    {true, false, "ON / OFF"},
    {false, true, "OFF / ON"},
    {false, false, "OFF / OFF"},
};
constexpr uint32_t kPageSizes[] = {16 * kKiB, 8 * kKiB, 4 * kKiB};

bool g_stats = false;
BenchJson* g_json = nullptr;

double RunConfig(const char* label, bool barriers, bool dwb,
                 uint32_t page_size, uint64_t nodes, uint64_t requests) {
  DbRigConfig rc;
  rc.write_barriers = barriers;
  rc.double_write = dwb;
  rc.page_size = page_size;
  // DB:pool ~ 10:1, like the paper's 100GB DB against a 10GB pool.
  rc.pool_bytes = nodes / 14 * kKiB;
  DbRig rig = MakeDbRig(rc);

  LinkBench::Config lc;
  lc.num_nodes = nodes;
  lc.clients = 128;
  lc.requests = requests;
  LinkBench bench(rig.db.get(), lc);
  if (!bench.Load(rig.io).ok()) {
    fprintf(stderr, "load failed\n");
    abort();
  }
  auto result = bench.Run();
  if (!result.ok()) abort();
  if (g_stats) {
    const auto& ps = rig.db->pool_stats();
    const auto& ws = rig.db->wal_stats();
    fprintf(stderr,
            "  [%uKB bar=%d dwb=%d] tps=%.0f miss=%.1f%% evict=%llu "
            "dirty_evict=%llu rbw=%llu wal_syncs=%llu rides=%llu "
            "data_flush=%llu log_flush=%llu stalls=%llu\n",
            page_size / 1024, barriers, dwb, result->tps,
            100.0 * ps.MissRatio(),
            (unsigned long long)ps.evictions,
            (unsigned long long)ps.dirty_evictions,
            (unsigned long long)ps.reads_blocked_by_writes,
            (unsigned long long)ws.syncs, (unsigned long long)ws.group_rides,
            (unsigned long long)rig.data_dev->stats().flushes,
            (unsigned long long)rig.log_dev->stats().flushes,
            (unsigned long long)rig.data_dev->stats().write_stalls);
    fprintf(stderr, "    lat(ms): getnode=%.2f getlinks=%.2f updnode=%.2f "
            "addlink=%.2f\n",
            result->latencies[LinkOp::kGetNode].Mean() / 1e6,
            result->latencies[LinkOp::kGetLinkList].Mean() / 1e6,
            result->latencies[LinkOp::kUpdateNode].Mean() / 1e6,
            result->latencies[LinkOp::kAddLink].Mean() / 1e6);
  }
  if (g_json != nullptr && g_json->enabled()) {
    BenchResult row(std::string(label) + "/page=" +
                    std::to_string(page_size / kKiB) + "KB");
    row.Param("write_barriers", barriers)
        .Param("double_write", dwb)
        .Param("page_size", static_cast<uint64_t>(page_size))
        .Throughput(result->tps, "txn/s")
        .LatencyNs(result->latencies[LinkOp::kAddLink])
        .Metrics(rig.db->metrics())
        .Device(*rig.data_dev);
    g_json->Add(std::move(row));
  }
  return result->tps;
}

void RunFigure(uint64_t nodes, uint64_t requests) {
  printf("Figure 5: LinkBench TPS (write-barrier / double-write-buffer)\n");
  printf("  %-12s %10s %10s %10s\n", "config", "16KB", "8KB", "4KB");
  for (const BarrierDwb& c : kConfigs) {
    printf("  %-12s", c.label);
    for (uint32_t ps : kPageSizes) {
      printf(" %10.0f",
             RunConfig(c.label, c.barriers, c.dwb, ps, nodes, requests));
      fflush(stdout);
    }
    printf("\n");
  }
}

}  // namespace
}  // namespace durassd

int main(int argc, char** argv) {
  uint64_t nodes = 100000;
  uint64_t requests = 60000;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--quick") == 0) {
      quick = true;
      nodes = 40000;
      requests = 20000;
    }
    if (strcmp(argv[i], "--stats") == 0) durassd::g_stats = true;
  }
  durassd::BenchJson json("fig5_linkbench",
                          durassd::BenchJson::PathFromArgs(argc, argv), quick);
  json.Config("nodes", nodes).Config("requests", requests)
      .Config("clients", uint64_t{128});
  durassd::g_json = &json;
  durassd::RunFigure(nodes, requests);
  return json.WriteFile() ? 0 : 1;
}
