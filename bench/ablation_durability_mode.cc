// Durability-mode ablation: the three commit disciplines a database can run
// on top of this device family, measured on the two paths that dominate
// OLTP durability cost:
//
//   volatile+flush      — commodity SSD (SSD-A), barriers ON: every commit
//                         fsync journals metadata and drains the volatile
//                         cache to NAND (the safe-but-slow deployment).
//   durable+ordered-ncq — DuraSSD, nobarrier mount: the capacitor-backed
//                         cache makes every acknowledged write durable, so
//                         fsync degenerates to syscall overhead (the
//                         paper's deployment, ordering from the NCQ clamp).
//   barrier             — DuraSSD, barrier-enabled I/O stack (Won et al.):
//                         fsync-for-ordering is replaced by a BARRIER
//                         submission sealing an epoch; durability still
//                         comes from the durable cache at write-ack time.
//
// Sections: fio fsync-heavy random-write IOPS (Table 1 methodology,
// fsync_every=1) and a WAL commit loop (append + make-durable per commit).
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>

#include "bench/bench_json.h"
#include "db/io_context.h"
#include "db/wal.h"
#include "host/durability_mode.h"
#include "host/sim_file.h"
#include "ssd/device_factory.h"
#include "workloads/fiosim.h"

namespace durassd {
namespace {

constexpr DurabilityMode kModes[] = {DurabilityMode::kVolatileFlush,
                                     DurabilityMode::kDurableOrderedNcq,
                                     DurabilityMode::kBarrier};

double RunFsyncIops(DurabilityMode mode, uint64_t ops, BenchJson* json) {
  auto device = MakeDeviceForDurabilityMode(mode, /*store_data=*/false);
  FioJob job;
  job.mode = FioJob::Mode::kRandWrite;
  job.block_bytes = 4 * kKiB;
  job.threads = 1;
  job.ops = ops;
  job.fsync_every = 1;
  job.write_barriers = WriteBarriersForDurabilityMode(mode);
  job.barrier_sync = mode == DurabilityMode::kBarrier;
  const FioResult r = RunFio(device.get(), job);
  if (json->enabled()) {
    BenchResult row(std::string("fsync_iops/") + DurabilityModeName(mode));
    row.Param("mode", DurabilityModeName(mode))
        .Param("fsync_every", static_cast<uint64_t>(1))
        .Throughput(r.iops, "iops")
        .LatencyNs(r.latency);
    json->Add(std::move(row));
  }
  return r.iops;
}

double RunWalCommits(DurabilityMode mode, uint64_t commits, BenchJson* json) {
  auto device = MakeDeviceForDurabilityMode(mode, /*store_data=*/false);
  SimFileSystem::Options fso;
  fso.write_barriers = WriteBarriersForDurabilityMode(mode);
  SimFileSystem fs(device.get(), fso);
  MetricsRegistry metrics;
  Wal::Options wo;
  wo.metrics = &metrics;
  wo.durability_mode = mode;
  Wal wal(fs.Open("wal"), wo);
  IoContext io;

  Histogram latency;
  WalRecord rec;
  rec.type = WalRecordType::kCommit;
  rec.key = "k";
  rec.value = std::string(200, 'v');  // A small-transaction redo payload.
  for (uint64_t i = 0; i < commits; ++i) {
    rec.txn = i + 1;
    const SimTime start = io.now;
    const Lsn lsn = wal.Append(rec);
    if (!wal.SyncTo(io, lsn).ok()) abort();
    latency.Record(io.now - start);
  }
  const double per_sec =
      io.now <= 0 ? 0
                  : static_cast<double>(commits) /
                        (static_cast<double>(io.now) / kSecond);
  if (json->enabled()) {
    BenchResult row(std::string("wal_commit/") + DurabilityModeName(mode));
    row.Param("mode", DurabilityModeName(mode))
        .Param("commits", commits)
        .Throughput(per_sec, "commit/s")
        .LatencyNs(latency)
        .Value("barrier_commits", wal.stats().barrier_commits)
        .Value("syncs", wal.stats().syncs);
    json->Add(std::move(row));
  }
  return per_sec;
}

void Run(uint64_t fio_ops, uint64_t commits, BenchJson* json) {
  printf("Ablation: durability mode (commit discipline x device)\n");
  printf("  %-24s %14s %14s\n", "mode", "fsync IOPS", "WAL commit/s");
  double iops[3] = {0, 0, 0};
  double cps[3] = {0, 0, 0};
  for (int m = 0; m < 3; ++m) {
    iops[m] = RunFsyncIops(kModes[m], fio_ops, json);
    cps[m] = RunWalCommits(kModes[m], commits, json);
    printf("  %-24s %14.0f %14.0f\n", DurabilityModeName(kModes[m]), iops[m],
           cps[m]);
  }
  printf("  barrier vs volatile+flush: %.1fx IOPS, %.1fx WAL commit/s\n",
         iops[0] > 0 ? iops[2] / iops[0] : 0,
         cps[0] > 0 ? cps[2] / cps[0] : 0);
}

}  // namespace
}  // namespace durassd

int main(int argc, char** argv) {
  uint64_t fio_ops = 20000;
  uint64_t commits = 20000;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--quick") == 0) {
      quick = true;
      fio_ops = 5000;
      commits = 5000;
    }
  }
  durassd::BenchJson json("ablation_durability_mode",
                          durassd::BenchJson::PathFromArgs(argc, argv), quick);
  json.Config("fio_ops", fio_ops).Config("commits", commits);
  durassd::Run(fio_ops, commits, &json);
  return json.WriteFile() ? 0 : 1;
}
