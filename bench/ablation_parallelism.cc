// Ablation (Sec. 2.3): internal parallelism sweep. The paper's example
// geometry gives a theoretical parallelism of 256 (8 channels x 4 packages
// x 4 chips x 2 planes); this sweep varies channels and planes to show how
// sustained random-write throughput tracks the plane count once the cache
// stops hiding the media.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_json.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"
#include "workloads/fiosim.h"

namespace durassd {
namespace {

double RunOne(uint32_t channels, uint32_t planes_per_chip, bool lazy,
              uint64_t ops, BenchJson* json) {
  SsdConfig cfg = SsdConfig::DuraSsd();
  cfg.geometry.channels = channels;
  cfg.geometry.planes_per_chip = planes_per_chip;
  // Keep capacity roughly constant so GC pressure is comparable.
  cfg.geometry.blocks_per_plane = 96 * 16 / (channels * planes_per_chip);
  // Open up the host interface so the media, not the firmware pipeline or
  // the bus, is the bottleneck under the 128-thread burst (a SATA link
  // serializes 4K writes at ~10us each and would flatten the sweep past
  // 64 planes).
  cfg.fw_parallelism = 32;
  cfg.fw_write_base = 10 * kMicrosecond;
  cfg.bus_write_bytes_per_ns = 3.2;  // ~PCIe Gen3 x4.
  cfg.bus_cmd_overhead = 1 * kMicrosecond;
  cfg.write_buffer_sectors = 512;
  cfg.store_data = false;
  if (!lazy) {
    // Legacy path: eager per-command destage onto blindly round-robined
    // planes, single-plane programs only.
    cfg.destage_batch_pages = 1;
    cfg.idle_aware_allocation = false;
    cfg.multi_plane_program = false;
  }
  SsdDevice dev(cfg);
  FioJob job;
  job.threads = 128;
  job.ops = ops;
  job.write_barriers = false;
  job.working_set_bytes = 64 * kMiB;
  const FioResult r = RunFio(&dev, job);
  if (json->enabled()) {
    BenchResult row{"channels=" + std::to_string(channels) +
                    "/planes=" + std::to_string(planes_per_chip) +
                    (lazy ? "/lazy" : "/eager_rr")};
    row.Param("channels", static_cast<uint64_t>(channels))
        .Param("planes_per_chip", static_cast<uint64_t>(planes_per_chip))
        .Param("total_planes",
               static_cast<uint64_t>(cfg.geometry.total_planes()))
        .Param("lazy_destage", lazy)
        .Throughput(r.iops, "iops")
        .LatencyNs(r.latency)
        .Device(dev);
    json->Add(std::move(row));
  }
  return r.iops;
}

void RunSweep(uint64_t ops, BenchJson* json) {
  printf("Ablation: internal parallelism vs sustained 4KB write IOPS\n");
  printf("  (eager_rr = per-command destage, blind round-robin planes;\n");
  printf("   lazy = batched destage, idle-aware planes, multi-plane)\n");
  printf("  %-10s %-8s %-8s %14s %14s %8s\n", "channels", "planes", "total",
         "eager_rr", "lazy", "ratio");
  const struct {
    uint32_t channels, planes_per_chip;
  } kConfigs[] = {{1, 1}, {2, 1}, {4, 1}, {4, 2}, {8, 2}, {16, 2}};
  for (const auto& c : kConfigs) {
    const double eager =
        RunOne(c.channels, c.planes_per_chip, /*lazy=*/false, ops, json);
    const double lazy =
        RunOne(c.channels, c.planes_per_chip, /*lazy=*/true, ops, json);
    printf("  %-10u %-8u %-8u %14.0f %14.0f %7.2fx\n", c.channels,
           c.planes_per_chip, c.channels * 4 * 4 * c.planes_per_chip, eager,
           lazy, eager > 0 ? lazy / eager : 0.0);
  }
}

}  // namespace
}  // namespace durassd

int main(int argc, char** argv) {
  uint64_t ops = 40000;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--quick") == 0) {
      quick = true;
      ops = 8000;
    }
  }
  durassd::BenchJson json("ablation_parallelism",
                          durassd::BenchJson::PathFromArgs(argc, argv), quick);
  json.Config("ops", ops);
  durassd::RunSweep(ops, &json);
  return json.WriteFile() ? 0 : 1;
}
