// Ablation (Sec. 2.3): internal parallelism sweep. The paper's example
// geometry gives a theoretical parallelism of 256 (8 channels x 4 packages
// x 4 chips x 2 planes); this sweep varies channels and planes to show how
// sustained random-write throughput tracks the plane count once the cache
// stops hiding the media.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_json.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"
#include "workloads/fiosim.h"

namespace durassd {
namespace {

void RunSweep(uint64_t ops, BenchJson* json) {
  printf("Ablation: internal parallelism vs sustained 4KB write IOPS\n");
  printf("  %-10s %-8s %-8s %12s\n", "channels", "planes", "total",
         "IOPS(128thr)");
  const struct {
    uint32_t channels, planes_per_chip;
  } kConfigs[] = {{1, 1}, {2, 1}, {4, 1}, {4, 2}, {8, 2}, {16, 2}};
  for (const auto& c : kConfigs) {
    SsdConfig cfg = SsdConfig::DuraSsd();
    cfg.geometry.channels = c.channels;
    cfg.geometry.planes_per_chip = c.planes_per_chip;
    // Keep capacity roughly constant so GC pressure is comparable.
    cfg.geometry.blocks_per_plane =
        96 * 16 / (c.channels * c.planes_per_chip);
    // Open up the host interface so the media, not the firmware pipeline,
    // is the bottleneck under the 128-thread burst.
    cfg.fw_parallelism = 32;
    cfg.fw_write_base = 10 * kMicrosecond;
    cfg.write_buffer_sectors = 512;
    cfg.store_data = false;
    SsdDevice dev(cfg);
    FioJob job;
    job.threads = 128;
    job.ops = ops;
    job.write_barriers = false;
    job.working_set_bytes = 64 * kMiB;
    const FioResult r = RunFio(&dev, job);
    printf("  %-10u %-8u %-8u %12.0f\n", c.channels,
           c.planes_per_chip,
           cfg.geometry.total_planes(), r.iops);
    if (json->enabled()) {
      BenchResult row("channels=" + std::to_string(c.channels) +
                      "/planes=" + std::to_string(c.planes_per_chip));
      row.Param("channels", static_cast<uint64_t>(c.channels))
          .Param("planes_per_chip", static_cast<uint64_t>(c.planes_per_chip))
          .Param("total_planes",
                 static_cast<uint64_t>(cfg.geometry.total_planes()))
          .Throughput(r.iops, "iops")
          .LatencyNs(r.latency)
          .Device(dev);
      json->Add(std::move(row));
    }
  }
}

}  // namespace
}  // namespace durassd

int main(int argc, char** argv) {
  uint64_t ops = 40000;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--quick") == 0) {
      quick = true;
      ops = 8000;
    }
  }
  durassd::BenchJson json("ablation_parallelism",
                          durassd::BenchJson::PathFromArgs(argc, argv), quick);
  json.Config("ops", ops);
  durassd::RunSweep(ops, &json);
  return json.WriteFile() ? 0 : 1;
}
