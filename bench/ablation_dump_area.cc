// Ablation (Sec. 3.4): power-loss dump size vs capacitor budget and
// recovery time. Sweeps the dirty-cache footprint at the instant of power
// failure and reports dump pages, whether the tantalum budget holds, and
// the replay time at reboot.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_json.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {
namespace {

void RunOne(uint32_t dirty_sectors, BenchJson* json) {
  SsdConfig cfg = SsdConfig::DuraSsd();
  cfg.geometry = FlashGeometry::Tiny();
  cfg.geometry.blocks_per_plane = 128;
  cfg.geometry.pages_per_block = 32;
  cfg.write_buffer_sectors = 4096;
  cfg.cache_capacity_sectors = 8192;
  cfg.dump_blocks_per_plane = 16;
  cfg.capacitor_budget_bytes = 8 * kMiB;
  SsdDevice dev(cfg);

  const std::string payload(cfg.sector_size, 'd');
  SimTime t = 0;
  SimTime first_ack = 0;
  for (uint32_t l = 0; l < dirty_sectors; ++l) {
    const auto r = dev.Write(t, l, payload);
    t = r.done;
    if (l == 0) first_ack = r.done;
  }
  // Cut immediately after the last ack: destages still in flight.
  dev.PowerCut(t + 1);
  const SimTime recovery = dev.PowerOn();

  printf("  %8u %12llu %10s %12.2f\n", dirty_sectors,
         (unsigned long long)dev.stats().dumped_pages,
         dev.stats().capacitor_overruns == 0 ? "ok" : "OVERRUN",
         static_cast<double>(recovery) / 1e6);
  (void)first_ack;
  if (json->enabled()) {
    BenchResult row("dirty_sectors=" + std::to_string(dirty_sectors));
    row.Param("dirty_sectors", static_cast<uint64_t>(dirty_sectors))
        .Value("dumped_pages", dev.stats().dumped_pages)
        .Value("capacitor_overruns", dev.stats().capacitor_overruns)
        .Value("recovery_ns", static_cast<int64_t>(recovery))
        .Device(dev);
    json->Add(std::move(row));
  }
}

}  // namespace
}  // namespace durassd

int main(int argc, char** argv) {
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--quick") == 0) quick = true;  // Already fast.
  }
  durassd::BenchJson json("ablation_dump_area",
                          durassd::BenchJson::PathFromArgs(argc, argv), quick);
  printf("Ablation: dirty cache at power loss vs dump size & recovery\n");
  printf("  %8s %12s %10s %12s\n", "dirty", "dumped_pgs", "budget",
         "recovery(ms)");
  for (uint32_t dirty : {16u, 64u, 256u, 1024u, 2048u}) {
    durassd::RunOne(dirty, &json);
  }
  return json.WriteFile() ? 0 : 1;
}
