// Ablation (DESIGN.md §13): host-parallelism sweep over the sharded
// virtual-time engine. Four independent engine shards (each a full
// device -> file system -> WAL -> buffer pool -> B+-tree stack) run the
// same deterministic upsert workload; the sweep varies only the number of
// HOST threads the epoch-barrier executor may use. Virtual-time results
// (ops, makespan) are bit-identical across the sweep — that is the
// executor's determinism contract — while wall-clock throughput
// (sim_ops_per_wall_second) is the thing host parallelism is allowed to
// change. Wall-clock is only emitted in full runs: under --quick (CI) the
// workload is too small for stable timing, and the regression guard would
// flap on scheduler noise.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_json.h"
#include "db/btree.h"
#include "db/buffer_pool.h"
#include "db/wal.h"
#include "host/sim_file.h"
#include "sim/sim_executor.h"
#include "ssd/ssd_config.h"
#include "ssd/ssd_device.h"

namespace durassd {
namespace {

class BumpAllocator : public PageAllocator {
 public:
  StatusOr<PageId> AllocatePage(IoContext& io) override {
    (void)io;
    return next_++;
  }

 private:
  PageId next_ = 1;
};

/// One engine shard: a private full stack driven by its shard's clients.
struct EngineShard {
  std::unique_ptr<SsdDevice> dev;
  std::unique_ptr<SimFileSystem> fs;
  std::unique_ptr<Wal> wal;
  std::unique_ptr<BufferPool> pool;
  BumpAllocator alloc;
  std::unique_ptr<BTree> tree;
  uint64_t op_seq = 0;

  explicit EngineShard(uint32_t seed) {
    SsdConfig cfg = SsdConfig::DuraSsd();
    cfg.geometry = FlashGeometry::Tiny();
    cfg.geometry.blocks_per_plane = 128;
    cfg.geometry.pages_per_block = 32;
    dev = std::make_unique<SsdDevice>(cfg);
    fs = std::make_unique<SimFileSystem>(dev.get(), SimFileSystem::Options{});
    wal = std::make_unique<Wal>(fs->Open("wal"), Wal::Options{});
    BufferPool::Options popts;
    popts.pool_bytes = 2 * kMiB;
    popts.page_size = 4 * kKiB;
    pool = std::make_unique<BufferPool>(fs->Open("data"), wal.get(), nullptr,
                                        popts);
    IoContext io;
    MutationCtx m{kInvalidLsn, 0, nullptr};
    auto root = BTree::Create(io, pool.get(), &alloc, m);
    tree = std::make_unique<BTree>(pool.get(), &alloc, *root);
    op_seq = seed * 1000003ull;
  }

  /// One client op: an upsert over a 4K-key space (real page churn), with
  /// a 5us host-CPU floor so buffer-cache hits still consume virtual time.
  SimTime Op(SimTime now) {
    IoContext io;
    io.now = now;
    MutationCtx m{kInvalidLsn, 0, nullptr};
    const uint64_t k = op_seq++ % 4096;
    std::string key = "key-" + std::to_string(k);
    std::string value = "v" + std::to_string(op_seq) + std::string(90, 'x');
    (void)tree->Put(io, m, key, value);
    const SimTime floor = now + 5 * kMicrosecond;
    return io.now > floor ? io.now : floor;
  }
};

struct SweepPoint {
  uint64_t sim_ops = 0;
  SimTime makespan = 0;
  double wall_seconds = 0;
};

SweepPoint RunOnce(uint32_t threads, uint64_t ops_per_shard) {
  constexpr uint32_t kShards = 4;
  SimExecutor::Options opts;
  opts.epoch_ns = 100 * kMicrosecond;
  opts.host_threads = threads;
  std::vector<std::unique_ptr<EngineShard>> engines;
  std::vector<ShardedExecutor::Shard> shards;
  for (uint32_t s = 0; s < kShards; ++s) {
    engines.push_back(std::make_unique<EngineShard>(s + 1));
    EngineShard* e = engines.back().get();
    shards.push_back({/*num_clients=*/4, ops_per_shard,
                      [e](uint32_t client, SimTime now) {
                        (void)client;
                        return e->Op(now);
                      }});
  }
  ShardedExecutor xe(opts, std::move(shards));
  const auto t0 = std::chrono::steady_clock::now();
  const auto results = xe.RunShards(/*start_time=*/0);
  const auto t1 = std::chrono::steady_clock::now();

  SweepPoint p;
  for (const auto& r : results) {
    p.sim_ops += r.ops;
    p.makespan = std::max(p.makespan, r.makespan);
  }
  p.wall_seconds = std::chrono::duration<double>(t1 - t0).count();
  return p;
}

void RunSweep(uint64_t ops_per_shard, bool quick, BenchJson* json) {
  printf("Ablation: host threads vs wall-clock throughput (sharded engine)\n");
  printf("  4 engine shards x %llu ops; virtual-time results must be\n",
         static_cast<unsigned long long>(ops_per_shard));
  printf("  identical across the sweep (executor determinism contract)\n");
  printf("  %-8s %12s %14s %14s %10s\n", "threads", "sim_ops",
         "makespan_ms", "wall_ms", "speedup");

  double base_wall = 0;
  SweepPoint first;
  for (const uint32_t threads : {1u, 2u, 4u, 8u}) {
    const SweepPoint p = RunOnce(threads, ops_per_shard);
    if (threads == 1) {
      base_wall = p.wall_seconds;
      first = p;
    } else if (p.sim_ops != first.sim_ops || p.makespan != first.makespan) {
      fprintf(stderr,
              "DETERMINISM VIOLATION: threads=%u diverged "
              "(ops %llu vs %llu, makespan %lld vs %lld)\n",
              threads, static_cast<unsigned long long>(p.sim_ops),
              static_cast<unsigned long long>(first.sim_ops),
              static_cast<long long>(p.makespan),
              static_cast<long long>(first.makespan));
    }
    const double speedup =
        p.wall_seconds > 0 ? base_wall / p.wall_seconds : 0.0;
    printf("  %-8u %12llu %14.2f %14.1f %9.2fx\n", threads,
           static_cast<unsigned long long>(p.sim_ops),
           static_cast<double>(p.makespan) / kMillisecond,
           p.wall_seconds * 1e3, speedup);

    if (json->enabled()) {
      BenchResult row{"threads=" + std::to_string(threads)};
      row.Param("host_threads", static_cast<uint64_t>(threads))
          .Param("shards", static_cast<uint64_t>(4))
          .Param("ops_per_shard", ops_per_shard)
          // Virtual-time throughput: deterministic, safe to guard per-row.
          .Throughput(static_cast<double>(p.sim_ops) /
                          (static_cast<double>(p.makespan) / kSecond),
                      "sim_ops_per_sim_second")
          .Value("sim_makespan_ns", static_cast<uint64_t>(p.makespan));
      if (!quick) {
        // Wall-clock scaling: guarded (higher is better), full runs only —
        // quick-mode workloads are too small for stable wall timing.
        row.Value("sim_ops_per_wall_second",
                  p.wall_seconds > 0
                      ? static_cast<double>(p.sim_ops) / p.wall_seconds
                      : 0.0);
      }
      json->Add(std::move(row));
    }
  }
}

}  // namespace
}  // namespace durassd

int main(int argc, char** argv) {
  uint64_t ops_per_shard = 30000;
  bool quick = false;
  for (int i = 1; i < argc; ++i) {
    if (strcmp(argv[i], "--quick") == 0) {
      quick = true;
      ops_per_shard = 4000;
    }
  }
  durassd::BenchJson json("ablation_host_parallelism",
                          durassd::BenchJson::PathFromArgs(argc, argv), quick);
  json.Config("ops_per_shard", ops_per_shard);
  durassd::RunSweep(ops_per_shard, quick, &json);
  return json.WriteFile() ? 0 : 1;
}
