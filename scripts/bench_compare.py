#!/usr/bin/env python3
"""Bench regression guard: compare a fresh BENCH_results.json to a baseline.

The simulator is virtual-time deterministic, so identical code produces
identical numbers; the tolerance band exists to let intentional,
reviewed perf changes through (after which the committed baseline should
be regenerated with `./run_benches.sh --quick --json`).

Usage:
    scripts/bench_compare.py BASELINE CURRENT [--tolerance 0.10]

Guarded metrics: per-row throughput (higher is better), plus the
GUARDED_VALUES scalars when a baseline row carries them — currently
write_amplification (lower is better), cache_hit_ratio (higher is
better), failover_read_p99_us (lower is better),
rebuild_foreground_floor (higher is better),
sim_ops_per_wall_second (higher is better; full runs only),
tier_hit_ratio (higher is better), and rewarm_seconds (lower is
better).

Exit status: 0 when no guarded metric moved more than the tolerance in
its bad direction (new rows/benches are fine, improvements are fine);
1 when a regression or a removed row/bench was found; 2 on usage errors.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path, "r", encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        print(f"bench_compare: cannot load {path}: {e}", file=sys.stderr)
        sys.exit(2)


def rows_by_name(bench_doc):
    return {r["name"]: r for r in bench_doc.get("results", []) if "name" in r}


# Scalar outputs in a row's "values" section that act as regression gates
# alongside throughput. Direction says which way is worse: write
# amplification regresses when it rises, cache-hit ratio when it drops.
GUARDED_VALUES = {
    "write_amplification": "lower_is_better",
    "cache_hit_ratio": "higher_is_better",
    # Array failover: post-failover read tail must not creep up, and the
    # rebuild scheduler's foreground-throughput floor must not erode.
    "failover_read_p99_us": "lower_is_better",
    "rebuild_foreground_floor": "higher_is_better",
    # Sharded engine: wall-clock simulation throughput (full runs only;
    # quick runs omit it because small workloads time too noisily).
    "sim_ops_per_wall_second": "higher_is_better",
    # Tiered cache: the hot-set hit ratio must not erode, and the warm
    # post-recovery rewarm pass must stay flash-fast (the cold arm's row
    # is guarded too — a slowdown there signals a destage regression).
    "tier_hit_ratio": "higher_is_better",
    "rewarm_seconds": "lower_is_better",
}


def compare_values(bench_name, row_name, base_row, cur_row, tolerance,
                   regressions, notes):
    """Compares GUARDED_VALUES entries present in the baseline row.

    Returns the number of value metrics compared.
    """
    base_vals = base_row.get("values") or {}
    cur_vals = cur_row.get("values") or {}
    compared = 0
    for key, direction in GUARDED_VALUES.items():
        if key not in base_vals:
            continue
        if key not in cur_vals:
            regressions.append(f"{bench_name}/{row_name}: {key} metric missing")
            continue
        compared += 1
        b, c = float(base_vals[key]), float(cur_vals[key])
        if direction == "lower_is_better":
            ceiling = b * (1.0 + tolerance)
            if c > ceiling:
                regressions.append(
                    f"{bench_name}/{row_name}: {key} {c:.3f} > "
                    f"{ceiling:.3f} (baseline {b:.3f} + {tolerance:.0%})"
                )
            elif b > 0 and c < b * (1.0 - tolerance):
                notes.append(
                    f"{bench_name}/{row_name}: {key} improved "
                    f"{b:.3f} -> {c:.3f} (consider refreshing the baseline)"
                )
        else:
            floor = b * (1.0 - tolerance)
            if c < floor:
                regressions.append(
                    f"{bench_name}/{row_name}: {key} {c:.3f} < "
                    f"{floor:.3f} (baseline {b:.3f} - {tolerance:.0%})"
                )
            elif c > b * (1.0 + tolerance):
                notes.append(
                    f"{bench_name}/{row_name}: {key} improved "
                    f"{b:.3f} -> {c:.3f} (consider refreshing the baseline)"
                )
    return compared


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("baseline")
    ap.add_argument("current")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=0.10,
        help="allowed fractional throughput drop vs baseline (default 0.10)",
    )
    args = ap.parse_args()

    base = load(args.baseline).get("benches", {})
    cur = load(args.current).get("benches", {})

    regressions = []
    notes = []
    compared = 0

    # A document with "results" but without the terminal "complete": true
    # marker is partial output (the bench died mid-write); comparing against
    # it — in either role — would silently shrink coverage.
    for role, docs in (("baseline", base), ("current", cur)):
        for bench_name, doc in sorted(docs.items()):
            if "results" in doc and doc.get("complete") is not True:
                regressions.append(
                    f"{bench_name}: {role} document is incomplete "
                    '(missing "complete": true)'
                )

    for bench_name, base_doc in sorted(base.items()):
        if "results" not in base_doc:
            # google-benchmark native output (micro_ops): wall-clock noisy,
            # guarded by its own tooling, skip.
            continue
        if bench_name not in cur:
            regressions.append(f"{bench_name}: bench missing from current run")
            continue
        cur_rows = rows_by_name(cur[bench_name])
        for row_name, base_row in rows_by_name(base_doc).items():
            base_tp = base_row.get("throughput")
            base_vals = base_row.get("values") or {}
            if not base_tp and not any(k in base_vals for k in GUARDED_VALUES):
                continue
            cur_row = cur_rows.get(row_name)
            if cur_row is None:
                # Renamed/removed rows show up on intentional bench rewrites;
                # they fail so the baseline refresh is never forgotten.
                regressions.append(f"{bench_name}/{row_name}: row missing")
                continue
            if base_tp:
                cur_tp = cur_row.get("throughput")
                if not cur_tp:
                    regressions.append(
                        f"{bench_name}/{row_name}: throughput metric missing"
                    )
                    continue
                compared += 1
                b, c = float(base_tp["value"]), float(cur_tp["value"])
                unit = base_tp.get("unit", "")
                floor = b * (1.0 - args.tolerance)
                if c < floor:
                    regressions.append(
                        f"{bench_name}/{row_name}: {c:.0f} {unit} < "
                        f"{floor:.0f} (baseline {b:.0f} - {args.tolerance:.0%})"
                    )
                elif c > b * (1.0 + args.tolerance):
                    notes.append(
                        f"{bench_name}/{row_name}: improved {b:.0f} -> "
                        f"{c:.0f} {unit} (consider refreshing the baseline)"
                    )
            compared += compare_values(
                bench_name, row_name, base_row, cur_row, args.tolerance,
                regressions, notes)

    for n in notes:
        print(f"note: {n}")
    print(f"bench_compare: {compared} rows compared, "
          f"{len(regressions)} regression(s), tolerance {args.tolerance:.0%}")
    if regressions:
        for r in regressions:
            print(f"REGRESSION: {r}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
