
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/btree.cc" "src/db/CMakeFiles/durassd_db.dir/btree.cc.o" "gcc" "src/db/CMakeFiles/durassd_db.dir/btree.cc.o.d"
  "/root/repo/src/db/buffer_pool.cc" "src/db/CMakeFiles/durassd_db.dir/buffer_pool.cc.o" "gcc" "src/db/CMakeFiles/durassd_db.dir/buffer_pool.cc.o.d"
  "/root/repo/src/db/database.cc" "src/db/CMakeFiles/durassd_db.dir/database.cc.o" "gcc" "src/db/CMakeFiles/durassd_db.dir/database.cc.o.d"
  "/root/repo/src/db/double_write_buffer.cc" "src/db/CMakeFiles/durassd_db.dir/double_write_buffer.cc.o" "gcc" "src/db/CMakeFiles/durassd_db.dir/double_write_buffer.cc.o.d"
  "/root/repo/src/db/page.cc" "src/db/CMakeFiles/durassd_db.dir/page.cc.o" "gcc" "src/db/CMakeFiles/durassd_db.dir/page.cc.o.d"
  "/root/repo/src/db/wal.cc" "src/db/CMakeFiles/durassd_db.dir/wal.cc.o" "gcc" "src/db/CMakeFiles/durassd_db.dir/wal.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/host/CMakeFiles/durassd_host.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/durassd_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
