# Empty compiler generated dependencies file for durassd_db.
# This may be replaced when dependencies are built.
