file(REMOVE_RECURSE
  "CMakeFiles/durassd_db.dir/btree.cc.o"
  "CMakeFiles/durassd_db.dir/btree.cc.o.d"
  "CMakeFiles/durassd_db.dir/buffer_pool.cc.o"
  "CMakeFiles/durassd_db.dir/buffer_pool.cc.o.d"
  "CMakeFiles/durassd_db.dir/database.cc.o"
  "CMakeFiles/durassd_db.dir/database.cc.o.d"
  "CMakeFiles/durassd_db.dir/double_write_buffer.cc.o"
  "CMakeFiles/durassd_db.dir/double_write_buffer.cc.o.d"
  "CMakeFiles/durassd_db.dir/page.cc.o"
  "CMakeFiles/durassd_db.dir/page.cc.o.d"
  "CMakeFiles/durassd_db.dir/wal.cc.o"
  "CMakeFiles/durassd_db.dir/wal.cc.o.d"
  "libdurassd_db.a"
  "libdurassd_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durassd_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
