file(REMOVE_RECURSE
  "libdurassd_db.a"
)
