# Empty compiler generated dependencies file for durassd_host.
# This may be replaced when dependencies are built.
