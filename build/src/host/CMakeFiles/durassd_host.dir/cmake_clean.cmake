file(REMOVE_RECURSE
  "CMakeFiles/durassd_host.dir/sim_file.cc.o"
  "CMakeFiles/durassd_host.dir/sim_file.cc.o.d"
  "libdurassd_host.a"
  "libdurassd_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durassd_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
