file(REMOVE_RECURSE
  "libdurassd_host.a"
)
