# Empty compiler generated dependencies file for durassd_ssd.
# This may be replaced when dependencies are built.
