file(REMOVE_RECURSE
  "CMakeFiles/durassd_ssd.dir/device_factory.cc.o"
  "CMakeFiles/durassd_ssd.dir/device_factory.cc.o.d"
  "CMakeFiles/durassd_ssd.dir/ftl.cc.o"
  "CMakeFiles/durassd_ssd.dir/ftl.cc.o.d"
  "CMakeFiles/durassd_ssd.dir/hdd_device.cc.o"
  "CMakeFiles/durassd_ssd.dir/hdd_device.cc.o.d"
  "CMakeFiles/durassd_ssd.dir/ssd_device.cc.o"
  "CMakeFiles/durassd_ssd.dir/ssd_device.cc.o.d"
  "libdurassd_ssd.a"
  "libdurassd_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durassd_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
