file(REMOVE_RECURSE
  "libdurassd_ssd.a"
)
