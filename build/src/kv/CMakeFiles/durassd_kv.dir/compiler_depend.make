# Empty compiler generated dependencies file for durassd_kv.
# This may be replaced when dependencies are built.
