file(REMOVE_RECURSE
  "libdurassd_kv.a"
)
