file(REMOVE_RECURSE
  "CMakeFiles/durassd_kv.dir/kvstore.cc.o"
  "CMakeFiles/durassd_kv.dir/kvstore.cc.o.d"
  "libdurassd_kv.a"
  "libdurassd_kv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durassd_kv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
