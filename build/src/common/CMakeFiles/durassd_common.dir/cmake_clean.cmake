file(REMOVE_RECURSE
  "CMakeFiles/durassd_common.dir/crc32c.cc.o"
  "CMakeFiles/durassd_common.dir/crc32c.cc.o.d"
  "CMakeFiles/durassd_common.dir/histogram.cc.o"
  "CMakeFiles/durassd_common.dir/histogram.cc.o.d"
  "CMakeFiles/durassd_common.dir/status.cc.o"
  "CMakeFiles/durassd_common.dir/status.cc.o.d"
  "libdurassd_common.a"
  "libdurassd_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durassd_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
