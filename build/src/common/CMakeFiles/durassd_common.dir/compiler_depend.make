# Empty compiler generated dependencies file for durassd_common.
# This may be replaced when dependencies are built.
