file(REMOVE_RECURSE
  "libdurassd_common.a"
)
