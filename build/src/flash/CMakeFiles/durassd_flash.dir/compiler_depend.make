# Empty compiler generated dependencies file for durassd_flash.
# This may be replaced when dependencies are built.
