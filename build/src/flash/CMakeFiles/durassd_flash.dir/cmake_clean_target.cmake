file(REMOVE_RECURSE
  "libdurassd_flash.a"
)
