file(REMOVE_RECURSE
  "CMakeFiles/durassd_flash.dir/flash_array.cc.o"
  "CMakeFiles/durassd_flash.dir/flash_array.cc.o.d"
  "libdurassd_flash.a"
  "libdurassd_flash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durassd_flash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
