file(REMOVE_RECURSE
  "libdurassd_workloads.a"
)
