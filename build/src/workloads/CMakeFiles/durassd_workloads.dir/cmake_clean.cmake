file(REMOVE_RECURSE
  "CMakeFiles/durassd_workloads.dir/fiosim.cc.o"
  "CMakeFiles/durassd_workloads.dir/fiosim.cc.o.d"
  "CMakeFiles/durassd_workloads.dir/linkbench.cc.o"
  "CMakeFiles/durassd_workloads.dir/linkbench.cc.o.d"
  "CMakeFiles/durassd_workloads.dir/tpcc.cc.o"
  "CMakeFiles/durassd_workloads.dir/tpcc.cc.o.d"
  "CMakeFiles/durassd_workloads.dir/ycsb.cc.o"
  "CMakeFiles/durassd_workloads.dir/ycsb.cc.o.d"
  "libdurassd_workloads.a"
  "libdurassd_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/durassd_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
