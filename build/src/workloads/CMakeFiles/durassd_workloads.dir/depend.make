# Empty dependencies file for durassd_workloads.
# This may be replaced when dependencies are built.
