file(REMOVE_RECURSE
  "CMakeFiles/flash_array_test.dir/flash_array_test.cc.o"
  "CMakeFiles/flash_array_test.dir/flash_array_test.cc.o.d"
  "flash_array_test"
  "flash_array_test.pdb"
  "flash_array_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/flash_array_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
