# Empty compiler generated dependencies file for hdd_device_test.
# This may be replaced when dependencies are built.
