file(REMOVE_RECURSE
  "CMakeFiles/sim_file_test.dir/sim_file_test.cc.o"
  "CMakeFiles/sim_file_test.dir/sim_file_test.cc.o.d"
  "sim_file_test"
  "sim_file_test.pdb"
  "sim_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
