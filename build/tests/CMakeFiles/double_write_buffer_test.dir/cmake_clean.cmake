file(REMOVE_RECURSE
  "CMakeFiles/double_write_buffer_test.dir/double_write_buffer_test.cc.o"
  "CMakeFiles/double_write_buffer_test.dir/double_write_buffer_test.cc.o.d"
  "double_write_buffer_test"
  "double_write_buffer_test.pdb"
  "double_write_buffer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/double_write_buffer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
