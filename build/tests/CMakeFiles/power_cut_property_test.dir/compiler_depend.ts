# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for power_cut_property_test.
