# Empty compiler generated dependencies file for power_cut_property_test.
# This may be replaced when dependencies are built.
