file(REMOVE_RECURSE
  "CMakeFiles/power_cut_property_test.dir/power_cut_property_test.cc.o"
  "CMakeFiles/power_cut_property_test.dir/power_cut_property_test.cc.o.d"
  "power_cut_property_test"
  "power_cut_property_test.pdb"
  "power_cut_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_cut_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
