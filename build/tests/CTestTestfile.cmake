# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/flash_array_test[1]_include.cmake")
include("/root/repo/build/tests/ftl_test[1]_include.cmake")
include("/root/repo/build/tests/ssd_device_test[1]_include.cmake")
include("/root/repo/build/tests/page_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/database_test[1]_include.cmake")
include("/root/repo/build/tests/kvstore_test[1]_include.cmake")
include("/root/repo/build/tests/sim_file_test[1]_include.cmake")
include("/root/repo/build/tests/hdd_device_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/wal_test[1]_include.cmake")
include("/root/repo/build/tests/buffer_pool_test[1]_include.cmake")
include("/root/repo/build/tests/double_write_buffer_test[1]_include.cmake")
include("/root/repo/build/tests/power_cut_property_test[1]_include.cmake")
