# Empty compiler generated dependencies file for table2_page_size.
# This may be replaced when dependencies are built.
