file(REMOVE_RECURSE
  "CMakeFiles/table2_page_size.dir/table2_page_size.cc.o"
  "CMakeFiles/table2_page_size.dir/table2_page_size.cc.o.d"
  "table2_page_size"
  "table2_page_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_page_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
