# Empty dependencies file for ablation_endurance.
# This may be replaced when dependencies are built.
