# Empty dependencies file for fig6_buffer_sweep.
# This may be replaced when dependencies are built.
