file(REMOVE_RECURSE
  "CMakeFiles/table1_fsync_iops.dir/table1_fsync_iops.cc.o"
  "CMakeFiles/table1_fsync_iops.dir/table1_fsync_iops.cc.o.d"
  "table1_fsync_iops"
  "table1_fsync_iops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_fsync_iops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
