# Empty dependencies file for table1_fsync_iops.
# This may be replaced when dependencies are built.
