# Empty dependencies file for ablation_dump_area.
# This may be replaced when dependencies are built.
