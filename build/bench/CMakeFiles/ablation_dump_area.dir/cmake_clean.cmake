file(REMOVE_RECURSE
  "CMakeFiles/ablation_dump_area.dir/ablation_dump_area.cc.o"
  "CMakeFiles/ablation_dump_area.dir/ablation_dump_area.cc.o.d"
  "ablation_dump_area"
  "ablation_dump_area.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dump_area.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
