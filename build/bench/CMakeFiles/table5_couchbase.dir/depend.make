# Empty dependencies file for table5_couchbase.
# This may be replaced when dependencies are built.
