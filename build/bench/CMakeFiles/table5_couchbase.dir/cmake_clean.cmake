file(REMOVE_RECURSE
  "CMakeFiles/table5_couchbase.dir/table5_couchbase.cc.o"
  "CMakeFiles/table5_couchbase.dir/table5_couchbase.cc.o.d"
  "table5_couchbase"
  "table5_couchbase.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_couchbase.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
