file(REMOVE_RECURSE
  "CMakeFiles/ablation_flush_semantics.dir/ablation_flush_semantics.cc.o"
  "CMakeFiles/ablation_flush_semantics.dir/ablation_flush_semantics.cc.o.d"
  "ablation_flush_semantics"
  "ablation_flush_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_flush_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
