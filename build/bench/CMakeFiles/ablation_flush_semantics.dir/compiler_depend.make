# Empty compiler generated dependencies file for ablation_flush_semantics.
# This may be replaced when dependencies are built.
