file(REMOVE_RECURSE
  "CMakeFiles/table4_tpcc.dir/table4_tpcc.cc.o"
  "CMakeFiles/table4_tpcc.dir/table4_tpcc.cc.o.d"
  "table4_tpcc"
  "table4_tpcc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_tpcc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
