# Empty dependencies file for table4_tpcc.
# This may be replaced when dependencies are built.
