# Empty compiler generated dependencies file for fig5_linkbench.
# This may be replaced when dependencies are built.
