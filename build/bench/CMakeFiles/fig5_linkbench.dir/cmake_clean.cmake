file(REMOVE_RECURSE
  "CMakeFiles/fig5_linkbench.dir/fig5_linkbench.cc.o"
  "CMakeFiles/fig5_linkbench.dir/fig5_linkbench.cc.o.d"
  "fig5_linkbench"
  "fig5_linkbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_linkbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
