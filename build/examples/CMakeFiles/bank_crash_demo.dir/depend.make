# Empty dependencies file for bank_crash_demo.
# This may be replaced when dependencies are built.
