file(REMOVE_RECURSE
  "CMakeFiles/bank_crash_demo.dir/bank_crash_demo.cpp.o"
  "CMakeFiles/bank_crash_demo.dir/bank_crash_demo.cpp.o.d"
  "bank_crash_demo"
  "bank_crash_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bank_crash_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
